#ifndef TRINITY_ANALYTICS_GRAPH_SNAPSHOT_H_
#define TRINITY_ANALYTICS_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"

namespace trinity::analytics {

/// Immutable per-machine view of the graph in degree-ordered CSR form — the
/// shape edge-iterator analytics want, which the cell-at-a-time access model
/// is exactly wrong for (every adjacency probe through the cloud pays
/// hashing, routing, and accessor pinning).
///
/// Vertices are relabeled by decreasing undirected degree (rank 0 = biggest
/// hub; ties by cell id ascending), and each vertex keeps only its *oriented*
/// adjacency: neighbor ranks strictly below its own, sorted ascending. Every
/// undirected edge therefore appears exactly once — at its higher-rank
/// endpoint, pointing at the hub side — and a vertex's oriented degree is
/// bounded by O(sqrt(m)), the classic forward-orientation property that
/// makes triangle counting Σ|A+(v) ∩ A+(u)| cheap. Hubs occupying the low
/// ranks is also what makes the packed-bitmap kernel dense.
///
/// The view is frozen at build time: once Build returns, no operation ever
/// touches cells again, and concurrent writers mutating the live graph
/// cannot be observed through it.
struct GraphSnapshot {
  /// Rank → local-index sentinel for vertices hosted elsewhere.
  static constexpr std::uint32_t kNotLocal = ~static_cast<std::uint32_t>(0);

  /// Slave that owns this view, or kInvalidMachine for a gathered
  /// full-graph snapshot (every vertex local).
  MachineId machine = kInvalidMachine;

  // --- Global tables, identical on every machine's view ------------------
  std::vector<CellId> id_by_rank;             ///< Rank → original cell id.
  std::vector<std::uint32_t> degree_by_rank;  ///< Undirected (dedup) degree.
  std::vector<MachineId> owner_by_rank;       ///< Rank → hosting machine.

  // --- Local oriented CSR -------------------------------------------------
  /// Ranks hosted on `machine`, ascending. Local index i ↔ local_ranks[i].
  std::vector<std::uint32_t> local_ranks;
  /// CSR offsets (size local_ranks.size() + 1) into `adjacency`.
  std::vector<std::uint64_t> offsets;
  /// Oriented neighbor ranks: each list strictly ascending, every entry
  /// strictly below the owning vertex's rank.
  std::vector<std::uint32_t> adjacency;
  /// Rank → local index (kNotLocal for remote ranks). Sized num_vertices().
  std::vector<std::uint32_t> local_index;

  std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(id_by_rank.size());
  }
  std::size_t num_local() const { return local_ranks.size(); }
  std::uint64_t oriented_edges() const { return adjacency.size(); }

  /// Oriented list of the vertex at local index i.
  std::span<const std::uint32_t> List(std::size_t i) const {
    return {adjacency.data() + offsets[i],
            static_cast<std::size_t>(offsets[i + 1] - offsets[i])};
  }

  /// Structural invariants: table sizes agree, local_ranks ascend, offsets
  /// are monotone, every list ascends strictly below its owner's rank. The
  /// immutability test validates views built *while* writers mutate cells —
  /// whatever set of vertices got frozen, the view must be consistent.
  Status Validate() const;
};

/// Materializes frozen views from live trunks. The scan runs over the
/// lock-free read path (PR 5): cells are visited through pinned const
/// accessors, so builders race concurrent writers safely and capture each
/// node atomically.
class SnapshotBuilder {
 public:
  /// Wall-clock + traffic breakdown of one build (driver-side; simulated
  /// cluster, so the fabric deltas are the modeled cost).
  struct BuildStats {
    double scan_ms = 0;      ///< Trunk scans (all machines).
    double exchange_ms = 0;  ///< Degree gather + rank-table broadcast.
    double csr_ms = 0;       ///< Per-machine CSR materialization.
    std::uint64_t exchange_bytes = 0;  ///< Fabric bytes for the rank tables.
    std::uint64_t exchange_messages = 0;
  };

  /// Builds one view per slave. Degrees are gathered to a coordinator and
  /// the (id, degree, owner) table is broadcast back in rank order — one
  /// packed payload per machine pair, metered on the fabric. Requires
  /// in-link tracking on directed graphs (a vertex must see its full
  /// undirected neighborhood in its own cell).
  static Status Build(graph::Graph* graph, std::vector<GraphSnapshot>* views,
                      BuildStats* stats = nullptr);

  /// Per-machine views gathered into one full-graph snapshot on the client
  /// endpoint (each machine ships its oriented CSR once) — the input shape
  /// k-truss decomposition wants.
  static Status BuildGlobal(graph::Graph* graph, GraphSnapshot* out,
                            BuildStats* stats = nullptr);
};

}  // namespace trinity::analytics

#endif  // TRINITY_ANALYTICS_GRAPH_SNAPSHOT_H_
