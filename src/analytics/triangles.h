#ifndef TRINITY_ANALYTICS_TRIANGLES_H_
#define TRINITY_ANALYTICS_TRIANGLES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "analytics/graph_snapshot.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "graph/graph.h"

namespace trinity::analytics {

/// Which set-intersection kernel the counter runs. kAdaptive picks per
/// vertex pair by degree skew and bitmap residency; the fixed modes are the
/// benchmark ablation arms.
enum class IntersectKernel {
  kMerge,      ///< Linear merge for every pair.
  kGalloping,  ///< Gallop the smaller list into the larger for every pair.
  kBitmap,     ///< Bitmap probe/AND when the hub side is bitmap-resident.
  kAdaptive,   ///< Per-pair choice by skew + residency (the default).
};

/// Per-kernel work accounting. `smaller_len` is the smaller input length of
/// each intersection the kernel served — the histograms that make the
/// selection thresholds data-driven instead of guessed.
struct KernelStats {
  std::uint64_t intersections = 0;
  std::uint64_t comparisons = 0;
  Histogram smaller_len;

  void Merge(const KernelStats& other) {
    intersections += other.intersections;
    comparisons += other.comparisons;
    smaller_len.Merge(other.smaller_len);
  }
};

struct TriangleStats {
  std::uint64_t triangles = 0;
  /// Kernel ablation counters: merge, galloping, bitmap probe (list vs
  /// bitmap), and bitmap AND (hub-hub word intersection).
  KernelStats merge;
  KernelStats gallop;
  KernelStats probe;
  KernelStats bitmap_and;
  std::uint64_t bitmap_builds = 0;     ///< Hub bitmaps materialized.
  std::uint64_t bitmap_build_ops = 0;  ///< Set-bit operations spent building.
  /// Boundary-adjacency exchange (Sanders/Uhl-style, once per machine pair):
  /// lists shipped, request+response payload bytes, and sync round trips —
  /// the distributed-counting scoreboard. A run over M machines issues at
  /// most M*(M-1) calls no matter how many edges cross the cut.
  std::uint64_t boundary_calls = 0;
  std::uint64_t boundary_lists = 0;
  std::uint64_t boundary_bytes = 0;
  double exchange_ms = 0;  ///< Wall time of the boundary exchange.
  double count_ms = 0;     ///< Wall time of the intersection loops.

  std::uint64_t total_comparisons() const {
    return merge.comparisons + gallop.comparisons + probe.comparisons +
           bitmap_and.comparisons + bitmap_build_ops;
  }
  std::uint64_t total_intersections() const {
    return merge.intersections + gallop.intersections + probe.intersections +
           bitmap_and.intersections;
  }

  void Merge(const TriangleStats& other);
};

struct TriangleOptions {
  IntersectKernel kernel = IntersectKernel::kAdaptive;
  /// Size ratio at which the skewed pair flips from merge to galloping.
  double gallop_skew = 16.0;
  /// Ranks below this bound get a precomputed packed bitmap (hubs occupy
  /// the low ranks, and an oriented hub list fits entirely below its own
  /// rank, so `hub_ranks` bits per bitmap always suffice).
  std::uint32_t hub_ranks = 4096;
  /// Per-machine dispatch threads (0 = hardware concurrency).
  int num_threads = 0;
};

/// Oriented triangle counting over frozen GraphSnapshot views: for every
/// vertex v and every oriented neighbor u (rank u < v), the count of
/// A+(v)[0..pos(u)) ∩ A+(u) — each triangle counted exactly once at its
/// highest-rank corner. Distribution ships each needed remote hub list once
/// per machine (the boundary exchange); counting itself never touches cells
/// or the fabric. Local vertex loops dispatch on a ThreadPool with
/// cost-weighted shards, so power-law hubs don't serialize one worker.
class TriangleCounter {
 public:
  TriangleCounter(graph::Graph* graph, TriangleOptions options);
  explicit TriangleCounter(graph::Graph* graph);

  TriangleCounter(const TriangleCounter&) = delete;
  TriangleCounter& operator=(const TriangleCounter&) = delete;

  /// Distributed count over per-machine views (as built by
  /// SnapshotBuilder::Build). Views are read-only throughout.
  Status Count(const std::vector<GraphSnapshot>& views, TriangleStats* out);

  /// Count on one full-graph snapshot (SnapshotBuilder::BuildGlobal) — no
  /// fabric traffic, the single-machine kernel showcase.
  Status CountLocal(const GraphSnapshot& snapshot, TriangleStats* out);

  /// Convenience: snapshot build + distributed count.
  Status CountFromCells(TriangleStats* out,
                        SnapshotBuilder::BuildStats* build_stats = nullptr);

 private:
  graph::Graph* graph_;
  const TriangleOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Cell-at-a-time correctness anchor: fetches every node cell through the
/// cloud (hashing + routing + accessor pinning per probe) and counts by
/// id-ordered neighborhood intersection — an implementation independent of
/// ranks, orientation, and kernels. `cells_fetched` (optional) reports the
/// number of cloud reads the cell-shaped access model paid.
Status CountTrianglesNaive(graph::Graph* graph, std::uint64_t* count,
                           std::uint64_t* cells_fetched = nullptr);

}  // namespace trinity::analytics

#endif  // TRINITY_ANALYTICS_TRIANGLES_H_
