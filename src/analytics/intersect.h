#ifndef TRINITY_ANALYTICS_INTERSECT_H_
#define TRINITY_ANALYTICS_INTERSECT_H_

#include <cstddef>
#include <cstdint>

namespace trinity::analytics {

/// Sorted-set intersection kernels over degree-ordered vertex ranks (u32,
/// strictly ascending). These are the raw-speed core of triangle counting
/// and k-truss: the caller (TriangleCounter) picks a kernel per vertex pair
/// by degree skew, so each kernel only has to win on its own shape.
///
/// Every kernel returns |a ∩ b| and adds its work to *comparisons — the
/// hardware-independent scoreboard the benchmarks ablate on (the CI box has
/// one core, so comparison counts are the portable speed signal).

/// Linear merge: the balanced-size workhorse. Work = elements advanced.
std::uint64_t IntersectMerge(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint64_t* comparisons);

/// Galloping (exponential probe + binary search) of the smaller list into
/// the larger — wins when the size skew is large (a non-hub list probing a
/// hub list). Work = probe steps, O(min * log(max/min)).
std::uint64_t IntersectGalloping(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb,
                                 std::uint64_t* comparisons);

/// List-vs-bitmap probe: counts elements of list[0..n) that are set in the
/// packed bitmap (bit r = rank r). Work = n probes, independent of the
/// bitmap side's length — the hub-list kernel.
std::uint64_t IntersectBitmapProbe(const std::uint32_t* list, std::size_t n,
                                   const std::uint64_t* bitmap,
                                   std::uint64_t* comparisons);

/// Bitmap-vs-bitmap: AND + popcount over `words` 64-bit words. Runtime-
/// dispatched to an AVX2 body when the CPU has it (4 words per vector op);
/// the densest hub-hub pairs in power-law graphs land here. Work = words.
std::uint64_t IntersectBitmapWords(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t words,
                                   std::uint64_t* comparisons);

/// Exposed for tests: the scalar AND+popcount body and whichever body
/// IntersectBitmapWords dispatched to at startup must agree bit-for-bit.
std::uint64_t AndPopcountScalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words);
/// True when the AVX2 body was selected at startup.
bool BitmapKernelUsesAvx2();

}  // namespace trinity::analytics

#endif  // TRINITY_ANALYTICS_INTERSECT_H_
