#ifndef TRINITY_SERVING_SERVING_STATS_H_
#define TRINITY_SERVING_SERVING_STATS_H_

#include <cstdint>

namespace trinity::serving {

/// Snapshot of frontend serving counters plus wall-clock latency
/// percentiles (micros), taken by QueryFrontend::stats(). Counters
/// partition terminal request outcomes: every request the frontend
/// received lands in exactly one of ok / not_found / shed /
/// deadline_exceeded / cancelled / unavailable / other_errors.
struct ServingStats {
  std::uint64_t received = 0;   ///< Requests presented to the frontend.
  std::uint64_t admitted = 0;   ///< Passed admission control.
  std::uint64_t ok = 0;
  std::uint64_t not_found = 0;
  /// ResourceExhausted: shed by admission control (queue full) or denied a
  /// retry by the cluster-wide retry budget.
  std::uint64_t shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;         ///< Aborted via cancellation token.
  std::uint64_t unavailable = 0;       ///< Terminal Unavailable/TimedOut.
  std::uint64_t other_errors = 0;

  /// Transaction outcomes (ExecuteTransaction). txn_committed/
  /// txn_conflicts are terminal (the latter: optimistic retries exhausted
  /// the deadline or retry budget); txn_conflict_retries counts per-attempt
  /// conflicts that were retried within one request.
  std::uint64_t txn_committed = 0;
  std::uint64_t txn_conflicts = 0;
  std::uint64_t txn_conflict_retries = 0;

  /// Reads served by a replica trunk while the primary was unreachable,
  /// since the frontend was constructed (delta of the cloud's counter).
  std::uint64_t degraded_reads = 0;

  /// Cluster-wide retry-budget activity since construction.
  std::uint64_t retries_granted = 0;
  std::uint64_t retries_denied = 0;
  double retry_budget_tokens = 0.0;

  /// Wall-clock latency over completed requests (micros).
  std::uint64_t latency_count = 0;
  double latency_mean_micros = 0.0;
  double latency_p50_micros = 0.0;
  double latency_p95_micros = 0.0;
  double latency_p99_micros = 0.0;
  double latency_max_micros = 0.0;
};

}  // namespace trinity::serving

#endif  // TRINITY_SERVING_SERVING_STATS_H_
