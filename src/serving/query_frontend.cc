#include "serving/query_frontend.h"

#include <chrono>

#include "compute/traversal.h"

namespace trinity::serving {

QueryFrontend::QueryFrontend(cloud::MemoryCloud* cloud, graph::Graph* graph,
                             const Options& options)
    : cloud_(cloud),
      graph_(graph),
      options_(options),
      retry_budget_(options.enable_retry_budget
                        ? std::make_unique<RetryBudget>(options.retry_budget)
                        : nullptr),
      txn_manager_(cloud),
      degraded_reads_baseline_(cloud->recovery_stats().degraded_reads),
      inflight_per_machine_(static_cast<std::size_t>(cloud->num_endpoints()),
                            0) {}

Status QueryFrontend::Admit(MachineId machine, CallContext* ctx) {
  std::unique_lock<std::mutex> lock(admission_mu_);
  auto over_limit = [&] {
    if (inflight_total_ >= options_.max_inflight_total) return true;
    return machine >= 0 &&
           inflight_per_machine_[static_cast<std::size_t>(machine)] >=
               options_.max_inflight_per_machine;
  };
  if (over_limit()) {
    if (!options_.backpressure_wait || !ctx->has_deadline()) {
      return Status::ResourceExhausted(
          machine >= 0
              ? "admission queue full for machine " + std::to_string(machine)
              : "admission queue full");
    }
    // Backpressure: wait for a slot, charging the wall wait against the
    // deadline (1 wall µs = 1 simulated µs) so a queued request cannot
    // outwait its caller.
    Stopwatch waited;
    double charged = 0.0;
    while (over_limit()) {
      admission_cv_.wait_for(lock, std::chrono::microseconds(100));
      const double elapsed = waited.ElapsedMicros();
      ctx->Consume(elapsed - charged);
      charged = elapsed;
      Status gate = ctx->Check();
      if (!gate.ok()) {
        return gate.IsDeadlineExceeded()
                   ? Status::DeadlineExceeded(
                         "deadline expired in the admission queue")
                   : gate;
      }
    }
  }
  ++inflight_total_;
  if (machine >= 0) {
    ++inflight_per_machine_[static_cast<std::size_t>(machine)];
  }
  return Status::OK();
}

void QueryFrontend::Release(MachineId machine) {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --inflight_total_;
    if (machine >= 0) {
      --inflight_per_machine_[static_cast<std::size_t>(machine)];
    }
  }
  admission_cv_.notify_all();
}

Status QueryFrontend::Dispatch(const Request& request, CallContext* ctx,
                               Response* response) {
  const MachineId client = cloud_->client_id();
  switch (request.type) {
    case RequestType::kGet:
      return cloud_->GetCellFrom(client, request.id, &response->value, ctx);
    case RequestType::kPut:
      return cloud_->PutCellFrom(client, request.id, Slice(request.payload),
                                 ctx);
    case RequestType::kMultiGet: {
      Status s = cloud_->MultiGet(client, request.ids, &response->values,
                                  ctx);
      if (!s.ok()) return s;
      // Per-id outcomes are in response->values; summarize the batch as the
      // first hard per-id failure so callers (and the terminal-status
      // accounting) see deadline/shed outcomes instead of a hollow OK.
      for (const auto& r : response->values) {
        if (!r.status.ok() && !r.status.IsNotFound()) return r.status;
      }
      return Status::OK();
    }
    case RequestType::kKHop: {
      if (graph_ == nullptr) {
        return Status::InvalidArgument("frontend has no graph attached");
      }
      // One traversal at a time: the engine registers fabric handlers for
      // the shared expand handler id and resets fabric meters per round.
      std::lock_guard<std::mutex> lock(traversal_mu_);
      compute::TraversalEngine engine(graph_);
      compute::TraversalEngine::QueryStats qstats;
      std::uint64_t visited = 0;
      Status s = engine.KHopExplore(
          request.id, request.hops,
          [&visited](CellId, int, Slice) {
            ++visited;
            return true;
          },
          &qstats, ctx);
      response->visited = visited;
      return s;
    }
    case RequestType::kTql: {
      if (graph_ == nullptr) {
        return Status::InvalidArgument("frontend has no graph attached");
      }
      std::lock_guard<std::mutex> lock(traversal_mu_);
      query::Tql tql(graph_);
      return tql.Execute(request.statement, &response->tql, ctx);
    }
  }
  return Status::InvalidArgument("unknown request type");
}

Status QueryFrontend::Execute(const Request& request, Response* response) {
  Stopwatch watch;
  counters_.received.fetch_add(1, std::memory_order_relaxed);
  *response = Response();

  const double deadline = request.deadline_micros > 0.0
                              ? request.deadline_micros
                              : options_.default_deadline_micros;
  CallContext ctx(deadline, retry_budget_.get());
  if (request.cancel != nullptr) ctx.set_cancel_token(request.cancel);

  // Point requests are admitted against their owner machine so one dead or
  // hot owner sheds its own traffic without starving the rest of the
  // cluster; batch and traversal requests hold a global slot only.
  MachineId target = -1;
  if (request.type == RequestType::kGet ||
      request.type == RequestType::kPut) {
    target = cloud_->MachineOf(request.id);
  }

  Status admitted = Admit(target, &ctx);
  if (!admitted.ok()) {
    response->status = admitted;
    response->latency_micros = watch.ElapsedMicros();
    RecordOutcome(admitted, response->latency_micros);
    return admitted;
  }
  counters_.admitted.fetch_add(1, std::memory_order_relaxed);

  Status s = Dispatch(request, &ctx, response);
  Release(target);

  response->status = s;
  response->latency_micros = watch.ElapsedMicros();
  RecordOutcome(s, response->latency_micros);
  return s;
}

Status QueryFrontend::ExecuteTransaction(
    const std::function<Status(txn::Transaction&)>& body,
    double deadline_micros, const std::atomic<bool>* cancel) {
  Stopwatch watch;
  counters_.received.fetch_add(1, std::memory_order_relaxed);

  const double deadline = deadline_micros > 0.0
                              ? deadline_micros
                              : options_.default_deadline_micros;
  CallContext ctx(deadline, retry_budget_.get());
  if (cancel != nullptr) ctx.set_cancel_token(cancel);

  // Transactions span arbitrary cells, so they hold a global admission
  // slot only (like batch requests).
  Status admitted = Admit(-1, &ctx);
  if (!admitted.ok()) {
    RecordOutcome(admitted, watch.ElapsedMicros());
    return admitted;
  }
  counters_.admitted.fetch_add(1, std::memory_order_relaxed);

  // Whole-transaction retry loop: Aborted[txn-conflict] is IsRetryable(),
  // so a contended transaction re-runs (fresh snapshot, fresh read set)
  // until it commits or the deadline / retry budget calls time. Every
  // other Aborted flavor — fenced deposed primaries, failed guards,
  // cancellation — stops the loop immediately.
  RetryPolicy::RunHooks hooks;
  hooks.ctx = &ctx;
  hooks.salt = 0x7c15bd4a'9d2e11ULL;
  hooks.charge = [this](double micros) {
    cloud_->fabric().AddCpuMicros(cloud_->client_id(), micros);
  };
  Status s = txn_manager_.policy().Run(hooks, [&](int) {
    txn::Transaction t = txn_manager_.Begin(cloud_->client_id(), &ctx);
    Status bs = body(t);
    if (!bs.ok() && !bs.IsTxnConflict()) return bs;
    Status cs = bs.ok() ? t.Commit() : bs;
    if (cs.IsTxnConflict()) {
      counters_.txn_conflict_retries.fetch_add(1,
                                               std::memory_order_relaxed);
    }
    return cs;
  });
  Release(-1);

  if (s.ok()) counters_.txn_committed.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(s, watch.ElapsedMicros());
  return s;
}

void QueryFrontend::RecordOutcome(const Status& status,
                                  double latency_micros) {
  if (status.ok()) {
    counters_.ok.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsNotFound()) {
    counters_.not_found.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsResourceExhausted()) {
    counters_.shed.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsDeadlineExceeded()) {
    counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsTxnConflict()) {
    // Terminal conflict: the transaction's optimistic retries ran out of
    // deadline/budget. Distinct from cancellation — callers may re-submit.
    counters_.txn_conflicts.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsAborted()) {
    counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsRetryable()) {
    counters_.unavailable.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.other_errors.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  latency_micros_.Add(latency_micros);
}

ServingStats QueryFrontend::stats() const {
  ServingStats out;
  out.received = counters_.received.load(std::memory_order_relaxed);
  out.admitted = counters_.admitted.load(std::memory_order_relaxed);
  out.ok = counters_.ok.load(std::memory_order_relaxed);
  out.not_found = counters_.not_found.load(std::memory_order_relaxed);
  out.shed = counters_.shed.load(std::memory_order_relaxed);
  out.deadline_exceeded =
      counters_.deadline_exceeded.load(std::memory_order_relaxed);
  out.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  out.unavailable = counters_.unavailable.load(std::memory_order_relaxed);
  out.other_errors = counters_.other_errors.load(std::memory_order_relaxed);
  out.txn_committed = counters_.txn_committed.load(std::memory_order_relaxed);
  out.txn_conflicts = counters_.txn_conflicts.load(std::memory_order_relaxed);
  out.txn_conflict_retries =
      counters_.txn_conflict_retries.load(std::memory_order_relaxed);
  out.degraded_reads =
      cloud_->recovery_stats().degraded_reads - degraded_reads_baseline_;
  if (retry_budget_ != nullptr) {
    out.retries_granted = retry_budget_->granted();
    out.retries_denied = retry_budget_->denied();
    out.retry_budget_tokens = retry_budget_->tokens();
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.latency_count = latency_micros_.count();
  if (out.latency_count > 0) {
    out.latency_mean_micros = latency_micros_.Mean();
    out.latency_p50_micros = latency_micros_.Percentile(50.0);
    out.latency_p95_micros = latency_micros_.Percentile(95.0);
    out.latency_p99_micros = latency_micros_.Percentile(99.0);
    out.latency_max_micros = latency_micros_.Max();
  }
  return out;
}

}  // namespace trinity::serving
