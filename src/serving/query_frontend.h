#ifndef TRINITY_SERVING_QUERY_FRONTEND_H_
#define TRINITY_SERVING_QUERY_FRONTEND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/memory_cloud.h"
#include "common/call_context.h"
#include "common/histogram.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "query/tql.h"
#include "serving/serving_stats.h"
#include "txn/txn.h"

namespace trinity::serving {

/// The serving front door of the memory cloud (in the spirit of A1's
/// Bing-facing tier): accepts concurrent point-read / write / MultiGet /
/// k-hop / TQL requests, stamps each with a CallContext (deadline +
/// cancellation + cluster-wide retry budget), applies admission control,
/// and dispatches into the cloud. Every request resolves to a terminal
/// status in bounded simulated time:
///
///  * OK / NotFound — the normal answers (reads may be served degraded by
///    a replica while the primary is down; see ServingStats).
///  * DeadlineExceeded — the deadline budget was spent by backoff waits,
///    injected stragglers, or traversal rounds; retry loops stop instead
///    of riding through a failover.
///  * ResourceExhausted — shed at admission (per-machine or global
///    inflight cap) or denied a retry by the token-bucket retry budget.
///  * Aborted — the request's cancellation token fired (or the caller is
///    a fenced, deposed primary).
///  * Unavailable — genuinely terminal: retries exhausted against an
///    unrecoverable owner.
///
/// Execute is thread-safe; concurrency comes from caller threads (the
/// open-loop bench drives one frontend from many workers). Traversal
/// requests (kKHop/kTql) serialize on an internal mutex because the
/// traversal engine registers per-query fabric handlers and resets the
/// fabric meters per round.
class QueryFrontend {
 public:
  struct Options {
    /// Deadline applied when a request carries none (0 = no deadline).
    /// Simulated microseconds, like CallContext.
    double default_deadline_micros = 200000.0;
    /// Admission control: per-machine and global caps on requests in
    /// flight. A request targeting machine m (the owner of its cell) is
    /// shed with ResourceExhausted when m's count or the global count is
    /// at the cap. Batch/traversal requests count only globally.
    int max_inflight_per_machine = 64;
    int max_inflight_total = 256;
    /// Backpressure instead of immediate shedding: a request finding the
    /// queue full waits for a slot, charging the wall wait against its
    /// deadline budget (1 wall µs = 1 simulated µs), and resolves to
    /// DeadlineExceeded if the budget runs out while queued. Requests
    /// without a deadline still shed immediately.
    bool backpressure_wait = false;
    /// Cluster-wide token-bucket retry budget shared by every request
    /// admitted through this frontend. Disable for the retry-storm
    /// ablation (each request then retries to its policy's max_attempts).
    bool enable_retry_budget = true;
    RetryBudget::Options retry_budget;
  };

  enum class RequestType : std::uint8_t {
    kGet = 1,
    kPut = 2,
    kMultiGet = 3,
    kKHop = 4,
    kTql = 5,
  };

  struct Request {
    RequestType type = RequestType::kGet;
    CellId id = 0;                 ///< kGet/kPut/kKHop start vertex.
    std::string payload;           ///< kPut value.
    std::vector<CellId> ids;       ///< kMultiGet batch.
    int hops = 2;                  ///< kKHop depth.
    std::string statement;         ///< kTql statement.
    /// Per-request deadline in simulated micros; 0 uses the frontend
    /// default.
    double deadline_micros = 0.0;
    /// Optional externally owned cancellation flag; must outlive the
    /// request. Checked at every retry/round boundary.
    const std::atomic<bool>* cancel = nullptr;
  };

  struct Response {
    Status status;
    std::string value;                                      ///< kGet.
    std::vector<cloud::MemoryCloud::MultiGetResult> values; ///< kMultiGet.
    std::uint64_t visited = 0;                              ///< kKHop.
    query::Tql::Result tql;                                 ///< kTql.
    double latency_micros = 0.0;  ///< Wall time inside Execute.
  };

  /// `graph` may be null when only point/batch requests are served; kKHop
  /// and kTql then return InvalidArgument. Both pointers are borrowed.
  QueryFrontend(cloud::MemoryCloud* cloud, graph::Graph* graph,
                const Options& options);

  QueryFrontend(const QueryFrontend&) = delete;
  QueryFrontend& operator=(const QueryFrontend&) = delete;

  /// Synchronously executes one request; always fills response->status
  /// (and returns it). Thread-safe.
  Status Execute(const Request& request, Response* response);

  /// Runs `body` inside an optimistic snapshot-isolation transaction with
  /// the frontend's full serving treatment: admission control (global
  /// slot), a CallContext deadline, the cluster-wide retry budget, and a
  /// whole-transaction retry loop. `body` receives a fresh Transaction per
  /// attempt — stage reads/writes through it and return OK to request
  /// Commit (any other status abandons the attempt and is terminal).
  /// Aborted[txn-conflict] commits are retried within the deadline/budget
  /// (contended transactions retry); Aborted[fenced] and every other
  /// terminal status are returned as-is (fenced writes stay terminal).
  /// Thread-safe; deadline_micros 0 uses the frontend default.
  Status ExecuteTransaction(
      const std::function<Status(txn::Transaction&)>& body,
      double deadline_micros = 0.0,
      const std::atomic<bool>* cancel = nullptr);

  ServingStats stats() const;
  RetryBudget* retry_budget() { return retry_budget_.get(); }
  txn::TxnManager* txn_manager() { return &txn_manager_; }

 private:
  /// machine < 0 means "global slot only" (batch/traversal requests).
  Status Admit(MachineId machine, CallContext* ctx);
  void Release(MachineId machine);
  Status Dispatch(const Request& request, CallContext* ctx,
                  Response* response);
  void RecordOutcome(const Status& status, double latency_micros);

  cloud::MemoryCloud* const cloud_;
  graph::Graph* const graph_;
  const Options options_;
  std::unique_ptr<RetryBudget> retry_budget_;
  /// Transaction factory/oracle shared by every ExecuteTransaction call
  /// (one per cloud — the timestamp oracle must be unique).
  txn::TxnManager txn_manager_;
  const std::uint64_t degraded_reads_baseline_;

  /// Admission state: inflight counts per machine + global, with a condvar
  /// for the backpressure_wait mode.
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  std::vector<int> inflight_per_machine_;
  int inflight_total_ = 0;

  /// kKHop/kTql serialize here: TraversalEngine registers fabric handlers
  /// for the shared kTraversalExpandHandler id and resets fabric meters
  /// per round, so at most one traversal may run at a time.
  std::mutex traversal_mu_;

  mutable std::mutex stats_mu_;
  Histogram latency_micros_;  ///< Guarded by stats_mu_.
  struct Counters {
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> not_found{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> deadline_exceeded{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> unavailable{0};
    std::atomic<std::uint64_t> other_errors{0};
    std::atomic<std::uint64_t> txn_committed{0};
    std::atomic<std::uint64_t> txn_conflicts{0};  ///< Terminal conflicts.
    std::atomic<std::uint64_t> txn_conflict_retries{0};
  };
  Counters counters_;
};

}  // namespace trinity::serving

#endif  // TRINITY_SERVING_QUERY_FRONTEND_H_
