#ifndef TRINITY_TXN_TXN_H_
#define TRINITY_TXN_TXN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cloud/memory_cloud.h"
#include "cloud/multiop.h"
#include "common/call_context.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/types.h"

namespace trinity::txn {

/// Optimistic snapshot-isolation transactions over the memory cloud — the
/// rung above MultiOp mini-transactions (paper §4.4) that A1-style systems
/// build on a memory cloud: cells carry a commit-timestamp version header,
/// reads record a read set, and commit is a two-phase protocol of guarded
/// MultiOp CASes (write intents → read validation → commit-record flip →
/// intent resolution) with presumed-abort recovery, so a coordinator killed
/// between any two steps leaves no torn state.

/// Decoded state of a versioned cell: the committed value (or tombstone)
/// plus at most one write intent from an in-flight transaction.
struct VersionedCell {
  std::uint64_t version = 0;  ///< Commit timestamp; 0 = never written.
  bool exists = false;        ///< Committed value present (vs tombstone).
  std::string value;
  bool has_intent = false;
  std::uint64_t intent_txn = 0;
  bool intent_remove = false;  ///< Intent is a Remove (else a Put).
  std::string intent_value;
};

/// Wire codec for versioned cells. Payloads written by transactions start
/// with a magic byte; any other payload (cells written by the plain KV API
/// before transactions ever touched them) decodes as a committed value at
/// the reserved legacy version 1, so transactions interoperate with
/// pre-existing data without a migration pass.
class CellCodec {
 public:
  static constexpr std::uint8_t kMagic = 0xA7;
  /// Version assigned to payloads that predate the codec.
  static constexpr std::uint64_t kLegacyVersion = 1;

  static std::string Encode(const VersionedCell& cell);
  /// Never fails on legacy payloads; Corruption only for truncated
  /// magic-prefixed payloads.
  static Status Decode(Slice payload, VersionedCell* out);
};

/// Commit-protocol step boundaries, exposed so chaos tests can kill the
/// coordinator at every point of the two-phase protocol deterministically.
enum class CommitPoint {
  kBeforeIntent,   ///< About to CAS-place the step-th write intent.
  kAfterIntent,    ///< Step-th intent is visible cluster-wide.
  kAfterValidate,  ///< Step-th read-set entry validated.
  kBeforeRecord,   ///< All intents placed + validated; record not written.
  kAfterRecord,    ///< Commit record durable — the transaction IS committed.
  kAfterResolve,   ///< Step-th intent resolved to its committed value.
};

class TxnManager;

/// One optimistic transaction. Not thread-safe; use one per logical
/// operation. Reads see latest-committed state (resolving any orphaned
/// intents they meet) plus this transaction's own buffered writes; Commit
/// validates the read set and either applies every write atomically or
/// none. Obtain via TxnManager::Begin.
class Transaction {
 public:
  Transaction(Transaction&&) = default;

  /// Reads a cell: buffered write if present, else cached read-set entry,
  /// else a committed read recorded into the read set. NotFound for absent
  /// cells and tombstones. Aborted[txn-conflict] means the transaction
  /// should be retried from scratch.
  Status Get(CellId id, std::string* out);
  /// Buffers a put; nothing is visible to others until Commit.
  Status Put(CellId id, Slice value);
  /// Buffers a remove.
  Status Remove(CellId id);

  /// Runs the two-phase commit protocol. Terminal statuses:
  ///  * OK — every write applied atomically at commit_ts().
  ///  * Aborted[txn-conflict] — lost an optimistic race (stale read set,
  ///    first-committer-wins, aborted by a recovery sweep). Retryable at
  ///    the whole-transaction level; all intents rolled back.
  ///  * DeadlineExceeded / ResourceExhausted / Unavailable — infrastructure
  ///    verdict from the CallContext / retry policy.
  /// Calling Commit twice is InvalidArgument.
  Status Commit();

  std::uint64_t txn_id() const { return txn_id_; }
  std::uint64_t begin_ts() const { return begin_ts_; }
  /// Valid after a successful Commit.
  std::uint64_t commit_ts() const { return commit_ts_; }

  /// Test hook, called at every CommitPoint boundary with the step index
  /// (which intent / which validation). Returning false simulates the
  /// coordinator dying on the spot: Commit returns Unavailable immediately
  /// with NO cleanup, leaving exactly the torn state a real kill would.
  void SetCommitHookForTest(
      std::function<bool(CommitPoint, int step)> hook) {
    commit_hook_ = std::move(hook);
  }

 private:
  friend class TxnManager;

  struct ReadEntry {
    std::uint64_t version = 0;
    bool found = false;
    std::string value;
  };
  struct WriteEntry {
    bool remove = false;
    std::string value;
  };

  Transaction(TxnManager* mgr, MachineId src, std::uint64_t txn_id,
              std::uint64_t begin_ts, CallContext* ctx)
      : mgr_(mgr), src_(src), txn_id_(txn_id), begin_ts_(begin_ts),
        ctx_(ctx) {}

  /// The protocol body; may return mid-flight (crashed) with intents down.
  Status TryCommit();
  Status PlaceIntent(CellId id, const WriteEntry& w);
  Status ValidateRead(CellId id, const ReadEntry& r);
  Status WriteCommitRecord();

  /// False ⇒ simulated coordinator death.
  bool Hook(CommitPoint point, int step) {
    return !commit_hook_ || commit_hook_(point, step);
  }

  /// RetryPolicy::Run wrapper for one protocol step: infra failures retry
  /// under the CallContext deadline, txn conflicts stop immediately
  /// (terminal for this transaction even though IsRetryable() is true for
  /// the whole-transaction loop above us).
  Status RunStep(std::uint64_t salt,
                 const std::function<Status()>& attempt);

  enum class State { kActive, kCommitted, kAborted, kCrashed };

  TxnManager* mgr_;
  MachineId src_;
  std::uint64_t txn_id_;
  std::uint64_t begin_ts_;
  std::uint64_t commit_ts_ = 0;
  CallContext* ctx_;
  State state_ = State::kActive;
  bool crashed_ = false;
  std::function<bool(CommitPoint, int)> commit_hook_;
  /// std::map: commit iterates writes in ascending global cell-id order,
  /// the same order every coordinator locks in — no deadlocks, no cycles.
  std::map<CellId, WriteEntry> writes_;
  std::map<CellId, ReadEntry> reads_;
  std::vector<CellId> placed_;  ///< Intents down, in placement order.
};

/// Factory + timestamp oracle + recovery sweeps. One TxnManager per cloud
/// (the oracle is process-local; two managers would collide txn ids).
/// Thread-safe: Begin/recovery helpers may run concurrently.
class TxnManager {
 public:
  /// Commit records live at kRecordBase + txn_id — a reserved id range no
  /// graph/KV workload uses (top 16 bits set).
  static constexpr CellId kRecordBase = 0xFFFF000000000000ULL;
  static CellId RecordCellOf(std::uint64_t txn_id) {
    return kRecordBase + txn_id;
  }

  /// Counters for tests/benchmarks (relaxed atomics).
  struct Stats {
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;        ///< Clean aborts (conflict/validation).
    std::uint64_t rolled_forward = 0; ///< Intents a helper rolled forward.
    std::uint64_t rolled_back = 0;    ///< Intents a helper rolled back.
    std::uint64_t presumed_aborts = 0;///< Abort records written by helpers.
  };

  explicit TxnManager(cloud::MemoryCloud* cloud,
                      RetryPolicy policy = RetryPolicy{})
      : cloud_(cloud), policy_(policy) {}

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Starts a transaction coordinated from `src` (pass a slave id so chaos
  /// tests can kill the coordinator; the client endpoint cannot fail).
  Transaction Begin(MachineId src, CallContext* ctx = nullptr) {
    const std::uint64_t id = NextStamp();
    return Transaction(this, src, id, id, ctx);
  }
  Transaction Begin() { return Begin(cloud_->client_id()); }

  /// Latest-committed read that resolves any orphaned intent it meets (the
  /// post-crash reader): never observes intent state. NotFound for absent
  /// cells and tombstones.
  Status ReadCommitted(MachineId src, CellId id, std::string* out,
                       CallContext* ctx = nullptr);

  /// Recovery sweep: resolves every orphaned intent among `ids` via the
  /// commit record (roll forward) or presumed-abort (roll back). One sweep
  /// leaves zero pending intents on reachable cells. `resolved` (may be
  /// null) counts intents decided.
  Status ResolveIntents(MachineId src, std::span<const CellId> ids,
                        int* resolved, CallContext* ctx = nullptr);

  /// Number of cells among `ids` still carrying a write intent.
  Status CountPendingIntents(MachineId src, std::span<const CellId> ids,
                             int* count, CallContext* ctx = nullptr);

  cloud::MemoryCloud* cloud() const { return cloud_; }
  const RetryPolicy& policy() const { return policy_; }
  Stats stats() const;

 private:
  friend class Transaction;

  std::uint64_t NextStamp() {
    return stamp_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Reads cell `id` and drives any intent on it to a decision: roll
  /// forward when the commit record says 'C', roll back when it says 'A',
  /// and presumed-abort (CAS an 'A' record in, then roll back) when no
  /// record exists — which wound-aborts a still-running owner: if that
  /// coordinator later tries its commit-record CAS it loses and aborts
  /// cleanly. Exactly one decision wins the record CAS. On return `out`
  /// holds the committed, intent-free state (version 0 / !exists when the
  /// cell is absent).
  Status ResolveCell(MachineId src, CellId id, VersionedCell* out,
                     CallContext* ctx);

  /// CASes the cell from exactly `raw` to its resolved state: the intent's
  /// value at `commit_ts` (roll forward) or the pre-intent committed state
  /// (roll back, removing the cell when it never existed).
  Status ApplyDecision(MachineId src, CellId id, const std::string& raw,
                       const VersionedCell& cur, bool commit,
                       std::uint64_t commit_ts, CallContext* ctx);

  cloud::MemoryCloud* cloud_;
  const RetryPolicy policy_;
  /// Shared sequence for txn ids, begin and commit timestamps. Starts
  /// above CellCodec::kLegacyVersion so legacy cells order before every
  /// transactional write.
  std::atomic<std::uint64_t> stamp_{CellCodec::kLegacyVersion + 1};

  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> rolled_forward_{0};
  std::atomic<std::uint64_t> rolled_back_{0};
  std::atomic<std::uint64_t> presumed_aborts_{0};
};

}  // namespace trinity::txn

#endif  // TRINITY_TXN_TXN_H_
