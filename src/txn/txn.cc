#include "txn/txn.h"

#include <algorithm>
#include <utility>

#include "common/serializer.h"

namespace trinity::txn {

namespace {

/// Commit-record payload stored at TxnManager::RecordCellOf(txn_id):
/// [state u8 'C'|'A'][commit_ts u64][n u32][cell ids u64 × n]. The record
/// cell is the transaction's single decision point — it is created exactly
/// once (MultiOp CompareAbsent CAS) by either the coordinator ('C') or a
/// presumed-abort helper ('A'), and never mutated or removed afterwards.
struct CommitRecord {
  bool committed = false;
  std::uint64_t commit_ts = 0;
  std::vector<CellId> cells;
};

std::string EncodeRecord(const CommitRecord& rec) {
  BinaryWriter w;
  w.PutU8(rec.committed ? 'C' : 'A');
  w.PutU64(rec.commit_ts);
  w.PutU32(static_cast<std::uint32_t>(rec.cells.size()));
  for (CellId id : rec.cells) w.PutU64(id);
  return w.Release();
}

Status DecodeRecord(Slice payload, CommitRecord* out) {
  BinaryReader r(payload);
  std::uint8_t state = 0;
  std::uint32_t n = 0;
  *out = CommitRecord{};
  if (!r.GetU8(&state) || !r.GetU64(&out->commit_ts) || !r.GetU32(&n)) {
    return Status::Corruption("truncated commit record");
  }
  if (state != 'C' && state != 'A') {
    return Status::Corruption("commit record with unknown state byte");
  }
  out->committed = (state == 'C');
  out->cells.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t id = 0;
    if (!r.GetU64(&id)) return Status::Corruption("truncated commit record");
    out->cells.push_back(id);
  }
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------- CellCodec

std::string CellCodec::Encode(const VersionedCell& cell) {
  BinaryWriter w;
  w.PutU8(kMagic);
  w.PutU64(cell.version);
  w.PutU8(cell.exists ? 1 : 0);
  if (cell.exists) w.PutString(cell.value);
  w.PutU8(cell.has_intent ? 1 : 0);
  if (cell.has_intent) {
    w.PutU64(cell.intent_txn);
    w.PutU8(cell.intent_remove ? 1 : 0);
    if (!cell.intent_remove) w.PutString(cell.intent_value);
  }
  return w.Release();
}

Status CellCodec::Decode(Slice payload, VersionedCell* out) {
  *out = VersionedCell{};
  if (payload.size() == 0 ||
      static_cast<std::uint8_t>(payload.data()[0]) != kMagic) {
    // Legacy payload written by the plain KV API: a committed value at the
    // reserved pre-transactional version.
    out->version = kLegacyVersion;
    out->exists = true;
    out->value.assign(payload.data(), payload.size());
    return Status::OK();
  }
  BinaryReader r(payload);
  std::uint8_t magic = 0, flag = 0;
  if (!r.GetU8(&magic) || !r.GetU64(&out->version) || !r.GetU8(&flag)) {
    return Status::Corruption("truncated versioned cell");
  }
  out->exists = (flag != 0);
  if (out->exists && !r.GetString(&out->value)) {
    return Status::Corruption("truncated versioned cell value");
  }
  if (!r.GetU8(&flag)) return Status::Corruption("truncated intent flag");
  out->has_intent = (flag != 0);
  if (out->has_intent) {
    if (!r.GetU64(&out->intent_txn) || !r.GetU8(&flag)) {
      return Status::Corruption("truncated write intent");
    }
    out->intent_remove = (flag != 0);
    if (!out->intent_remove && !r.GetString(&out->intent_value)) {
      return Status::Corruption("truncated write intent value");
    }
  }
  return Status::OK();
}

// ----------------------------------------------------------- Transaction

Status Transaction::Get(CellId id, std::string* out) {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction already finished");
  }
  auto w = writes_.find(id);
  if (w != writes_.end()) {  // Read-your-writes from the buffer.
    if (w->second.remove) return Status::NotFound("removed in transaction");
    if (out) *out = w->second.value;
    return Status::OK();
  }
  auto r = reads_.find(id);
  if (r != reads_.end()) {  // Repeatable reads from the read set.
    if (!r->second.found) return Status::NotFound("no such cell");
    if (out) *out = r->second.value;
    return Status::OK();
  }
  VersionedCell cell;
  Status s = mgr_->ResolveCell(src_, id, &cell, ctx_);
  if (!s.ok()) return s;
  reads_.emplace(id, ReadEntry{cell.version, cell.exists, cell.value});
  if (!cell.exists) return Status::NotFound("no such cell");
  if (out) *out = cell.value;
  return Status::OK();
}

Status Transaction::Put(CellId id, Slice value) {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction already finished");
  }
  writes_[id] = WriteEntry{false, value.ToString()};
  return Status::OK();
}

Status Transaction::Remove(CellId id) {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction already finished");
  }
  writes_[id] = WriteEntry{true, ""};
  return Status::OK();
}

Status Transaction::RunStep(std::uint64_t salt,
                            const std::function<Status()>& attempt) {
  // Conflicts are IsRetryable() so the *whole-transaction* loop above us
  // re-runs the transaction — but within one transaction a conflict is
  // terminal, so stop the step loop through keep_trying while preserving
  // the subcoded status.
  Status conflict;
  RetryPolicy::RunHooks hooks;
  hooks.ctx = ctx_;
  hooks.salt = salt;
  hooks.charge = [this](double micros) {
    mgr_->cloud_->fabric().AddCpuMicros(src_, micros);
  };
  hooks.keep_trying = [&conflict] { return conflict.ok(); };
  return mgr_->policy_.Run(hooks, [&](int) {
    Status s = attempt();
    if (s.IsTxnConflict()) conflict = s;
    return s;
  });
}

Status Transaction::PlaceIntent(CellId id, const WriteEntry& w) {
  const int kCasAttempts = std::max(4, mgr_->policy_.max_attempts);
  for (int i = 0; i < kCasAttempts; ++i) {
    std::string raw;
    Status s = mgr_->cloud_->GetCellFrom(src_, id, &raw, ctx_);
    const bool absent = s.IsNotFound();
    if (!s.ok() && !absent) return s;
    VersionedCell cur;
    if (!absent) {
      s = CellCodec::Decode(Slice(raw), &cur);
      if (!s.ok()) return s;
    }
    if (cur.has_intent) {
      if (cur.intent_txn == txn_id_) return Status::OK();  // Idempotent.
      // Foreign intent: drive it to a decision, then re-read fresh state.
      VersionedCell resolved;
      s = mgr_->ResolveCell(src_, id, &resolved, ctx_);
      if (!s.ok()) return s;
      continue;
    }
    // Snapshot-isolation write checks. Both failures mean another
    // transaction committed this cell concurrently with us.
    auto r = reads_.find(id);
    if (r != reads_.end() && cur.version != r->second.version) {
      return Status::Aborted(
          "write-set cell " + std::to_string(id) + " changed since read",
          Status::Subcode::kTxnConflict);
    }
    if (cur.version > begin_ts_) {
      return Status::Aborted(
          "first committer wins: cell " + std::to_string(id) +
              " committed after our snapshot",
          Status::Subcode::kTxnConflict);
    }
    VersionedCell next = cur;
    next.has_intent = true;
    next.intent_txn = txn_id_;
    next.intent_remove = w.remove;
    next.intent_value = w.remove ? std::string() : w.value;
    const std::string encoded = CellCodec::Encode(next);
    cloud::MultiOp op(mgr_->cloud_);
    op.WithContext(ctx_);
    if (absent) {
      op.CompareAbsent(id).Put(id, Slice(encoded));
    } else {
      op.CompareEquals(id, Slice(raw)).Put(id, Slice(encoded));
    }
    s = op.Execute(src_);
    if (s.ok()) return Status::OK();
    if (!s.IsGuardFailed()) return s;
    // Lost the CAS to a concurrent writer — re-read and try again.
  }
  return Status::Aborted("intent CAS contended beyond retry limit",
                         Status::Subcode::kTxnConflict);
}

Status Transaction::ValidateRead(CellId id, const ReadEntry& r) {
  // ResolveCell first drives any in-flight intent on the cell to a
  // decision (wounding a slower writer), so the version comparison is
  // always against committed state.
  VersionedCell cur;
  Status s = mgr_->ResolveCell(src_, id, &cur, ctx_);
  if (!s.ok()) return s;
  if (cur.version != r.version) {
    return Status::Aborted(
        "read-set validation failed for cell " + std::to_string(id),
        Status::Subcode::kTxnConflict);
  }
  return Status::OK();
}

Status Transaction::WriteCommitRecord() {
  CommitRecord rec;
  rec.committed = true;
  rec.commit_ts = commit_ts_;
  rec.cells.assign(placed_.begin(), placed_.end());
  const CellId rid = TxnManager::RecordCellOf(txn_id_);
  const std::string encoded = EncodeRecord(rec);
  cloud::MultiOp op(mgr_->cloud_);
  op.WithContext(ctx_);
  op.CompareAbsent(rid).Put(rid, Slice(encoded));
  Status s = op.Execute(src_);
  if (s.ok()) return Status::OK();
  if (!s.IsGuardFailed()) return s;
  // Lost the record CAS. Either an infra retry of our own Put already
  // landed (committed after all) or a presumed-abort helper decided first.
  std::string raw;
  Status g = mgr_->cloud_->GetCellFrom(src_, rid, &raw, ctx_);
  if (!g.ok()) return g;
  CommitRecord existing;
  g = DecodeRecord(Slice(raw), &existing);
  if (!g.ok()) return g;
  if (existing.committed) return Status::OK();
  return Status::Aborted("wound-aborted by a recovery sweep",
                         Status::Subcode::kTxnConflict);
}

Status Transaction::TryCommit() {
  const auto crash = [this] {
    crashed_ = true;
    return Status::Unavailable("txn coordinator killed at crash point");
  };

  // Phase 1 — place write intents in ascending global cell-id order (the
  // map's order), the same order every coordinator uses: deadlock-free.
  int step = 0;
  for (const auto& [id, w] : writes_) {
    if (!Hook(CommitPoint::kBeforeIntent, step)) return crash();
    Status s = RunStep(id, [&, this] { return PlaceIntent(id, w); });
    if (!s.ok()) return s;
    placed_.push_back(id);
    if (!Hook(CommitPoint::kAfterIntent, step)) return crash();
    ++step;
  }

  // Phase 2 — validate the read set against current committed versions.
  // Cells we also write were already version-checked by the intent CAS.
  step = 0;
  for (const auto& [id, r] : reads_) {
    if (writes_.count(id) != 0) continue;
    Status s = RunStep(id, [&, this] { return ValidateRead(id, r); });
    if (!s.ok()) return s;
    if (!Hook(CommitPoint::kAfterValidate, step)) return crash();
    ++step;
  }
  if (writes_.empty()) return Status::OK();  // Read-only: validated above.

  // Phase 3 — the decision: exactly-once commit-record CAS. Before this
  // lands the transaction is presumed aborted; after it, committed.
  commit_ts_ = mgr_->NextStamp();
  if (!Hook(CommitPoint::kBeforeRecord, 0)) return crash();
  Status s = RunStep(txn_id_, [this] { return WriteCommitRecord(); });
  if (!s.ok()) return s;
  if (!Hook(CommitPoint::kAfterRecord, 0)) return crash();

  // Phase 4 — resolution: flip intents to committed values. Best effort:
  // the decision is already durable, so any intent left behind by an infra
  // failure here is rolled forward lazily by the next reader or sweep.
  step = 0;
  for (CellId id : placed_) {
    VersionedCell scratch;
    (void)mgr_->ResolveCell(src_, id, &scratch, ctx_);
    if (!Hook(CommitPoint::kAfterResolve, step)) return crash();
    ++step;
  }
  return Status::OK();
}

Status Transaction::Commit() {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction already finished");
  }
  Status s = TryCommit();
  if (crashed_) {
    // Simulated coordinator death: leave every intent and half-written
    // record exactly as they are — recovery owns the cleanup.
    state_ = State::kCrashed;
    return s;
  }
  if (s.ok()) {
    state_ = State::kCommitted;
    mgr_->committed_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  state_ = State::kAborted;
  mgr_->aborted_.fetch_add(1, std::memory_order_relaxed);
  // Clean abort: resolve our own intents now (each resolution decides
  // abort through the record CAS — we never wrote a 'C' record, and after
  // the 'A' record lands we never can). Best effort; anything unreachable
  // is resolved lazily by readers or the next sweep.
  for (CellId id : placed_) {
    VersionedCell scratch;
    (void)mgr_->ResolveCell(src_, id, &scratch, ctx_);
  }
  return s;
}

// ------------------------------------------------------------ TxnManager

Status TxnManager::ResolveCell(MachineId src, CellId id, VersionedCell* out,
                               CallContext* ctx) {
  const int kAttempts = std::max(8, policy_.max_attempts * 2);
  for (int i = 0; i < kAttempts; ++i) {
    if (ctx != nullptr) {
      Status c = ctx->Check();
      if (!c.ok()) return c;
    }
    std::string raw;
    Status s = cloud_->GetCellFrom(src, id, &raw, ctx);
    if (s.IsNotFound()) {
      *out = VersionedCell{};
      return Status::OK();
    }
    if (!s.ok()) return s;
    VersionedCell cur;
    s = CellCodec::Decode(Slice(raw), &cur);
    if (!s.ok()) return s;
    if (!cur.has_intent) {
      *out = std::move(cur);
      return Status::OK();
    }

    // Intent found: the owner's commit record is the single source of
    // truth for its fate.
    const CellId rid = RecordCellOf(cur.intent_txn);
    std::string rec_raw;
    bool commit = false;
    std::uint64_t commit_ts = 0;
    s = cloud_->GetCellFrom(src, rid, &rec_raw, ctx);
    if (s.ok()) {
      CommitRecord rec;
      Status d = DecodeRecord(Slice(rec_raw), &rec);
      if (!d.ok()) return d;
      commit = rec.committed;
      commit_ts = rec.commit_ts;
    } else if (s.IsNotFound()) {
      // Presumed abort: no record means not committed. Race the (possibly
      // still-running) owner for the record cell; exactly one CAS wins. A
      // live coordinator that loses sees 'A' at its own record CAS and
      // aborts cleanly — no torn outcome either way.
      CommitRecord abort_rec;  // committed=false
      const std::string encoded = EncodeRecord(abort_rec);
      cloud::MultiOp op(cloud_);
      op.WithContext(ctx);
      op.CompareAbsent(rid).Put(rid, Slice(encoded));
      Status a = op.Execute(src);
      if (a.ok()) {
        presumed_aborts_.fetch_add(1, std::memory_order_relaxed);
      } else if (a.IsGuardFailed()) {
        continue;  // Owner won the race — re-read the record next lap.
      } else {
        return a;
      }
    } else {
      return s;
    }
    Status ap = ApplyDecision(src, id, raw, cur, commit, commit_ts, ctx);
    if (!ap.ok() && !ap.IsGuardFailed()) return ap;
    // ok: re-read to return the post-decision state. Guard-fail: someone
    // else applied the decision (or the cell moved on) — re-read too.
  }
  return Status::Aborted("intent resolution contended beyond retry limit",
                         Status::Subcode::kTxnConflict);
}

Status TxnManager::ApplyDecision(MachineId src, CellId id,
                                 const std::string& raw,
                                 const VersionedCell& cur, bool commit,
                                 std::uint64_t commit_ts, CallContext* ctx) {
  VersionedCell next;
  if (commit) {
    next.version = commit_ts;
    next.exists = !cur.intent_remove;
    next.value = cur.intent_value;
  } else {
    // Restore the pre-intent committed state (tombstones keep their
    // version so a later reader can still order against them).
    next.version = cur.version;
    next.exists = cur.exists;
    next.value = cur.value;
  }
  cloud::MultiOp op(cloud_);
  op.WithContext(ctx);
  if (!commit && next.version == 0 && !next.exists) {
    // Rolling back an intent on a never-written cell: restore absence.
    op.CompareEquals(id, Slice(raw)).Remove(id);
  } else {
    const std::string encoded = CellCodec::Encode(next);
    op.CompareEquals(id, Slice(raw)).Put(id, Slice(encoded));
  }
  Status s = op.Execute(src);
  if (s.ok()) {
    (commit ? rolled_forward_ : rolled_back_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

Status TxnManager::ReadCommitted(MachineId src, CellId id, std::string* out,
                                 CallContext* ctx) {
  VersionedCell cell;
  Status s = ResolveCell(src, id, &cell, ctx);
  if (!s.ok()) return s;
  if (!cell.exists) return Status::NotFound("no such cell");
  if (out) *out = cell.value;
  return Status::OK();
}

Status TxnManager::ResolveIntents(MachineId src, std::span<const CellId> ids,
                                  int* resolved, CallContext* ctx) {
  int n = 0;
  for (CellId id : ids) {
    std::string raw;
    Status s = cloud_->GetCellFrom(src, id, &raw, ctx);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    VersionedCell cur;
    s = CellCodec::Decode(Slice(raw), &cur);
    if (!s.ok()) return s;
    if (!cur.has_intent) continue;
    VersionedCell scratch;
    s = ResolveCell(src, id, &scratch, ctx);
    if (!s.ok()) return s;
    ++n;
  }
  if (resolved != nullptr) *resolved = n;
  return Status::OK();
}

Status TxnManager::CountPendingIntents(MachineId src,
                                       std::span<const CellId> ids,
                                       int* count, CallContext* ctx) {
  int n = 0;
  for (CellId id : ids) {
    std::string raw;
    Status s = cloud_->GetCellFrom(src, id, &raw, ctx);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    VersionedCell cur;
    s = CellCodec::Decode(Slice(raw), &cur);
    if (!s.ok()) return s;
    if (cur.has_intent) ++n;
  }
  *count = n;
  return Status::OK();
}

TxnManager::Stats TxnManager::stats() const {
  Stats out;
  out.committed = committed_.load(std::memory_order_relaxed);
  out.aborted = aborted_.load(std::memory_order_relaxed);
  out.rolled_forward = rolled_forward_.load(std::memory_order_relaxed);
  out.rolled_back = rolled_back_.load(std::memory_order_relaxed);
  out.presumed_aborts = presumed_aborts_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace trinity::txn
