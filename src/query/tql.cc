#include "query/tql.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace trinity::query {

namespace {

/// Minimal token stream for TQL statements: keywords/identifiers, unsigned
/// integers, quoted strings, and the '..' range operator.
class TokenStream {
 public:
  explicit TokenStream(const std::string& input) : input_(input) {}

  /// Consumes the next token into *out; kinds: 'w' word (upper-cased),
  /// 'n' number, 's' string, 'r' range "..", 'e' end.
  char Next(std::string* out) {
    SkipSpace();
    out->clear();
    if (pos_ >= input_.size()) return 'e';
    const char c = input_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        out->push_back(input_[pos_++]);
      }
      return 'n';
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        out->push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(input_[pos_++]))));
      }
      return 'w';
    }
    if (c == '\'') {
      ++pos_;
      while (pos_ < input_.size() && input_[pos_] != '\'') {
        out->push_back(input_[pos_++]);
      }
      if (pos_ >= input_.size()) return '!';  // Unterminated.
      ++pos_;
      return 's';
    }
    if (c == '.' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '.') {
      pos_ += 2;
      *out = "..";
      return 'r';
    }
    if (c == '=') {
      ++pos_;
      *out = "=";
      return 'w';
    }
    return '!';
  }

  std::size_t position() const { return pos_; }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }
  const std::string& input_;
  std::size_t pos_ = 0;
};

Status SyntaxError(const TokenStream& stream, const std::string& message) {
  return Status::InvalidArgument("TQL: " + message + " (near position " +
                                 std::to_string(stream.position()) + ")");
}

}  // namespace

struct Tql::ParsedQuery {
  enum class Kind { kExplore, kCount, kNeighbors, kNode, kPath };
  Kind kind = Kind::kExplore;
  CellId from = kInvalidCell;
  CellId to = kInvalidCell;
  int min_hops = 1;
  int max_hops = 1;
  bool has_name_filter = false;
  std::string name_filter;
  std::uint64_t limit = 0;  ///< 0 = unlimited.
  bool inbound = false;     ///< NEIGHBORS ... IN.
};

Status Tql::Execute(const std::string& statement, Result* result,
                    CallContext* ctx) {
  *result = Result();
  if (ctx != nullptr) {
    Status gate = ctx->Check();
    if (!gate.ok()) return gate;
  }
  TokenStream stream(statement);
  std::string token;
  char kind = stream.Next(&token);
  if (kind != 'w') return SyntaxError(stream, "expected a statement keyword");

  ParsedQuery query;
  auto expect_number = [&](const char* what, std::uint64_t* out) -> Status {
    std::string t;
    if (stream.Next(&t) != 'n') {
      return SyntaxError(stream, std::string("expected ") + what);
    }
    *out = std::stoull(t);
    return Status::OK();
  };
  auto expect_word = [&](const char* word) -> Status {
    std::string t;
    if (stream.Next(&t) != 'w' || t != word) {
      return SyntaxError(stream, std::string("expected ") + word);
    }
    return Status::OK();
  };

  if (token == "EXPLORE" || token == "COUNT") {
    query.kind = token == "EXPLORE" ? ParsedQuery::Kind::kExplore
                                    : ParsedQuery::Kind::kCount;
    Status s = expect_word("FROM");
    if (!s.ok()) return s;
    std::uint64_t id = 0;
    s = expect_number("source id", &id);
    if (!s.ok()) return s;
    query.from = id;
    s = expect_word("HOPS");
    if (!s.ok()) return s;
    std::uint64_t min_hops = 0, max_hops = 0;
    s = expect_number("min hops", &min_hops);
    if (!s.ok()) return s;
    std::string t;
    if (stream.Next(&t) != 'r') {
      return SyntaxError(stream, "expected '..' in hop range");
    }
    s = expect_number("max hops", &max_hops);
    if (!s.ok()) return s;
    if (min_hops > max_hops) {
      return SyntaxError(stream, "hop range is inverted");
    }
    query.min_hops = static_cast<int>(min_hops);
    query.max_hops = static_cast<int>(max_hops);
    // Optional clauses in any order.
    for (;;) {
      const char k = stream.Next(&t);
      if (k == 'e') break;
      if (k != 'w') return SyntaxError(stream, "unexpected token");
      if (t == "WHERE") {
        s = expect_word("NAME");
        if (!s.ok()) return s;
        s = expect_word("=");
        if (!s.ok()) return s;
        if (stream.Next(&query.name_filter) != 's') {
          return SyntaxError(stream, "expected a quoted name");
        }
        query.has_name_filter = true;
      } else if (t == "LIMIT") {
        s = expect_number("limit", &query.limit);
        if (!s.ok()) return s;
      } else {
        return SyntaxError(stream, "unknown clause '" + t + "'");
      }
    }
    return RunExplore(query, query.kind == ParsedQuery::Kind::kCount,
                      result, ctx);
  }
  if (token == "NEIGHBORS") {
    query.kind = ParsedQuery::Kind::kNeighbors;
    Status s = expect_word("OF");
    if (!s.ok()) return s;
    std::uint64_t id = 0;
    s = expect_number("node id", &id);
    if (!s.ok()) return s;
    query.from = id;
    std::string t;
    const char k = stream.Next(&t);
    if (k == 'w' && t == "IN") {
      query.inbound = true;
    } else if (k == 'w' && t == "OUT") {
      query.inbound = false;
    } else if (k != 'e') {
      return SyntaxError(stream, "expected OUT, IN or end of statement");
    }
    return RunNeighbors(query, result);
  }
  if (token == "NODE") {
    query.kind = ParsedQuery::Kind::kNode;
    std::uint64_t id = 0;
    Status s = expect_number("node id", &id);
    if (!s.ok()) return s;
    query.from = id;
    return RunNode(query, result);
  }
  if (token == "PATH") {
    query.kind = ParsedQuery::Kind::kPath;
    Status s = expect_word("FROM");
    if (!s.ok()) return s;
    std::uint64_t id = 0;
    s = expect_number("source id", &id);
    if (!s.ok()) return s;
    query.from = id;
    s = expect_word("TO");
    if (!s.ok()) return s;
    s = expect_number("target id", &id);
    if (!s.ok()) return s;
    query.to = id;
    query.max_hops = 16;
    std::string t;
    const char k = stream.Next(&t);
    if (k == 'w' && t == "MAXHOPS") {
      std::uint64_t max_hops = 0;
      s = expect_number("max hops", &max_hops);
      if (!s.ok()) return s;
      query.max_hops = static_cast<int>(max_hops);
    } else if (k != 'e') {
      return SyntaxError(stream, "expected MAXHOPS or end of statement");
    }
    return RunPath(query, result, ctx);
  }
  return SyntaxError(stream, "unknown statement '" + token + "'");
}

Status Tql::RunExplore(const ParsedQuery& query, bool count_only,
                       Result* result, CallContext* ctx) {
  compute::TraversalEngine engine(graph_);
  compute::TraversalEngine::QueryStats stats;
  std::uint64_t matched = 0;
  if (!count_only) result->columns = {"node", "hops", "name"};
  const Status s = engine.KHopExplore(
      query.from, query.max_hops,
      [&](CellId v, int depth, Slice data) {
        if (depth < query.min_hops) return true;
        if (query.has_name_filter &&
            data.ToView() != query.name_filter) {
          return true;
        }
        if (query.limit != 0 && matched >= query.limit) return false;
        ++matched;
        if (!count_only) {
          result->rows.push_back({std::to_string(v), std::to_string(depth),
                                  data.ToString()});
        }
        return true;
      },
      &stats, ctx);
  if (!s.ok()) return s;
  if (count_only) {
    result->columns = {"count"};
    result->rows.push_back({std::to_string(matched)});
  }
  result->modeled_millis = stats.modeled_millis;
  result->visited = stats.visited;
  return Status::OK();
}

Status Tql::RunNeighbors(const ParsedQuery& query, Result* result) {
  std::vector<CellId> links;
  Status s = query.inbound ? graph_->GetInlinks(query.from, &links)
                           : graph_->GetOutlinks(query.from, &links);
  if (!s.ok()) return s;
  result->columns = {"neighbor"};
  for (CellId v : links) {
    result->rows.push_back({std::to_string(v)});
  }
  return Status::OK();
}

Status Tql::RunNode(const ParsedQuery& query, Result* result) {
  std::string data;
  Status s = graph_->GetNodeData(query.from, &data);
  if (!s.ok()) return s;
  std::vector<CellId> out;
  s = graph_->GetOutlinks(query.from, &out);
  if (!s.ok()) return s;
  result->columns = {"node", "name", "out_degree", "machine"};
  result->rows.push_back(
      {std::to_string(query.from), data, std::to_string(out.size()),
       std::to_string(graph_->MachineOfNode(query.from))});
  return Status::OK();
}

Status Tql::RunPath(const ParsedQuery& query, Result* result,
                    CallContext* ctx) {
  compute::TraversalEngine engine(graph_);
  compute::TraversalEngine::QueryStats stats;
  std::int64_t distance = -1;
  const Status s = engine.KHopExplore(
      query.from, query.max_hops,
      [&](CellId v, int depth, Slice) {
        if (v == query.to && distance < 0) {
          distance = depth;
          return false;
        }
        return distance < 0;  // Stop expanding once found.
      },
      &stats, ctx);
  if (!s.ok()) return s;
  result->columns = {"from", "to", "distance"};
  result->rows.push_back({std::to_string(query.from),
                          std::to_string(query.to),
                          distance < 0 ? "unreachable"
                                       : std::to_string(distance)});
  result->modeled_millis = stats.modeled_millis;
  result->visited = stats.visited;
  return Status::OK();
}

std::string Tql::Format(const Result& result) {
  std::vector<std::size_t> widths;
  widths.reserve(result.columns.size());
  for (const std::string& c : result.columns) widths.push_back(c.size());
  for (const auto& row : result.rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      out.append(widths[i] - row[i].size() + 2, ' ');
    }
    out += '\n';
  };
  append_row(result.columns);
  for (const auto& row : result.rows) append_row(row);
  char footer[96];
  std::snprintf(footer, sizeof(footer),
                "(%zu rows, %llu visited, %.3f ms modeled)\n",
                result.rows.size(),
                static_cast<unsigned long long>(result.visited),
                result.modeled_millis);
  out += footer;
  return out;
}

}  // namespace trinity::query
