#ifndef TRINITY_QUERY_TQL_H_
#define TRINITY_QUERY_TQL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/call_context.h"
#include "compute/traversal.h"
#include "graph/graph.h"

namespace trinity::query {

/// TQL — Trinity Query Language (lite).
///
/// The paper (§4.2) notes that "we implemented a sophisticated graph query
/// language (TQL) within this framework" as an example of TSL-enabled
/// system extension. This module provides a compact, self-contained
/// reproduction of that layer: a textual query language whose statements
/// compile onto the traversal engine and the graph API.
///
/// Grammar (case-insensitive keywords):
///
///   query     := explore | count | neighbors | node | path
///   explore   := EXPLORE FROM <id> HOPS <min>..<max>
///                  [WHERE NAME = '<str>'] [LIMIT <n>]
///   count     := COUNT FROM <id> HOPS <min>..<max> [WHERE NAME = '<str>']
///   neighbors := NEIGHBORS OF <id> [OUT | IN]
///   node      := NODE <id>
///   path      := PATH FROM <id> TO <id> [MAXHOPS <n>]
///
/// Examples:
///
///   EXPLORE FROM 4242 HOPS 1..3 WHERE NAME = 'David' LIMIT 10
///   COUNT FROM 0 HOPS 1..2
///   NEIGHBORS OF 17 OUT
///   PATH FROM 3 TO 99 MAXHOPS 6
class Tql {
 public:
  struct Result {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
    /// Online-query cost of the statement (zero for point lookups).
    double modeled_millis = 0;
    std::uint64_t visited = 0;
  };

  explicit Tql(graph::Graph* graph) : graph_(graph) {}

  Tql(const Tql&) = delete;
  Tql& operator=(const Tql&) = delete;

  /// Parses and executes one statement. Syntax errors come back as
  /// InvalidArgument with a position hint. `ctx`, when non-null, carries
  /// the request deadline into the traversal rounds of EXPLORE/COUNT/PATH
  /// (point statements answer from local state and only check it once).
  Status Execute(const std::string& statement, Result* result,
                 CallContext* ctx = nullptr);

  /// Renders a result as an aligned text table (for shells and examples).
  static std::string Format(const Result& result);

 private:
  struct ParsedQuery;

  Status RunExplore(const ParsedQuery& query, bool count_only,
                    Result* result, CallContext* ctx);
  Status RunNeighbors(const ParsedQuery& query, Result* result);
  Status RunNode(const ParsedQuery& query, Result* result);
  Status RunPath(const ParsedQuery& query, Result* result, CallContext* ctx);

  graph::Graph* graph_;
};

}  // namespace trinity::query

#endif  // TRINITY_QUERY_TQL_H_
