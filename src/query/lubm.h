#ifndef TRINITY_QUERY_LUBM_H_
#define TRINITY_QUERY_LUBM_H_

#include <cstdint>

#include "common/status.h"
#include "query/rdf_store.h"

namespace trinity::query {

/// LUBM-shaped synthetic data generator (Lehigh University Benchmark,
/// paper ref [20]): universities containing departments, which employ
/// professors, who teach courses and advise students; students are members
/// of departments and take courses. Triples-per-entity ratios follow LUBM's
/// published shape at a configurable scale.
class LubmGenerator {
 public:
  struct Options {
    int universities = 2;
    int departments_per_university = 8;
    int professors_per_department = 6;
    int courses_per_professor = 2;
    int students_per_department = 40;
    int courses_per_student = 3;
    std::uint64_t seed = 2024;
  };

  struct Dataset {
    std::uint64_t entities = 0;
    std::uint64_t triples = 0;
    /// Id ranges for the query driver.
    CellId first_university = 0;
    CellId first_course = 0;
    std::uint64_t num_universities = 0;
    std::uint64_t num_courses = 0;
  };

  /// Populates `store` and describes the dataset.
  static Status Generate(RdfStore* store, const Options& options,
                         Dataset* dataset);
};

}  // namespace trinity::query

#endif  // TRINITY_QUERY_LUBM_H_
