#include "query/lubm.h"

#include <vector>

#include "common/random.h"

namespace trinity::query {

Status LubmGenerator::Generate(RdfStore* store, const Options& options,
                               Dataset* dataset) {
  *dataset = Dataset();
  Random rng(options.seed);
  CellId next_id = 0;
  auto new_entity = [&](EntityType type, Status* status) {
    const CellId id = next_id++;
    Status s = store->AddEntity(id, type);
    if (!s.ok()) *status = s;
    ++dataset->entities;
    return id;
  };
  auto add_triple = [&](CellId s, Predicate p, CellId o, Status* status) {
    Status st = store->AddTriple(s, p, o);
    if (!st.ok()) *status = st;
    ++dataset->triples;
  };

  Status failure;
  dataset->first_university = next_id;
  std::vector<CellId> universities;
  for (int u = 0; u < options.universities; ++u) {
    universities.push_back(new_entity(EntityType::kUniversity, &failure));
  }
  dataset->num_universities = universities.size();

  std::vector<CellId> all_courses;
  for (CellId university : universities) {
    for (int d = 0; d < options.departments_per_university; ++d) {
      const CellId department = new_entity(EntityType::kDepartment, &failure);
      add_triple(department, Predicate::kSubOrganizationOf, university,
                 &failure);
      std::vector<CellId> professors;
      std::vector<CellId> courses;
      for (int p = 0; p < options.professors_per_department; ++p) {
        const CellId professor = new_entity(EntityType::kProfessor, &failure);
        add_triple(professor, Predicate::kWorksFor, department, &failure);
        professors.push_back(professor);
        for (int c = 0; c < options.courses_per_professor; ++c) {
          const CellId course = new_entity(EntityType::kCourse, &failure);
          add_triple(professor, Predicate::kTeacherOf, course, &failure);
          courses.push_back(course);
          all_courses.push_back(course);
        }
      }
      for (int s = 0; s < options.students_per_department; ++s) {
        const CellId student = new_entity(EntityType::kStudent, &failure);
        add_triple(student, Predicate::kMemberOf, department, &failure);
        add_triple(student, Predicate::kAdvisor,
                   professors[rng.Uniform(professors.size())], &failure);
        for (int c = 0; c < options.courses_per_student; ++c) {
          add_triple(student, Predicate::kTakesCourse,
                     courses[rng.Uniform(courses.size())], &failure);
        }
      }
    }
  }
  dataset->num_courses = all_courses.size();
  dataset->first_course = all_courses.empty() ? 0 : all_courses.front();
  return failure;
}

}  // namespace trinity::query
