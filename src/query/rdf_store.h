#ifndef TRINITY_QUERY_RDF_STORE_H_
#define TRINITY_QUERY_RDF_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cloud/memory_cloud.h"
#include "common/status.h"
#include "net/cost_model.h"

namespace trinity::query {

/// Entity types and predicates of the LUBM-shaped university knowledge base
/// used for the Fig 14(b) SPARQL experiments (the paper runs four SPARQL
/// queries on LUBM with ~1.4 G triples through the Trinity-based RDF engine
/// [36]; this reproduction generates the same shape at reduced scale).
enum class EntityType : std::uint32_t {
  kUniversity = 1,
  kDepartment = 2,
  kProfessor = 3,
  kStudent = 4,
  kCourse = 5,
};

enum class Predicate : std::uint32_t {
  kSubOrganizationOf = 1,  ///< Department -> University.
  kWorksFor = 2,           ///< Professor -> Department.
  kMemberOf = 3,           ///< Student -> Department.
  kAdvisor = 4,            ///< Student -> Professor.
  kTeacherOf = 5,          ///< Professor -> Course.
  kTakesCourse = 6,        ///< Student -> Course.
};

/// A graph-native RDF store on the memory cloud (paper §8 ref [36]: "A
/// distributed graph engine for web scale RDF data"). Each entity is a
/// cell; triples are predicate-tagged adjacency entries stored inside the
/// subject's cell:
///
///   [u32 type][u32 n][(u32 predicate, u64 object) x n]
///
/// Triple inserts append at the end of the blob — the trunk reservation
/// fast path — and queries run as machine-parallel scans plus cell lookups,
/// never relational joins.
class RdfStore {
 public:
  explicit RdfStore(cloud::MemoryCloud* cloud) : cloud_(cloud) {}

  RdfStore(const RdfStore&) = delete;
  RdfStore& operator=(const RdfStore&) = delete;

  cloud::MemoryCloud* cloud() { return cloud_; }

  Status AddEntity(CellId id, EntityType type);
  Status AddTriple(CellId subject, Predicate predicate, CellId object);

  Status GetType(CellId id, EntityType* out);
  /// Objects of (subject, predicate, ?o).
  Status GetObjects(CellId subject, Predicate predicate,
                    std::vector<CellId>* out);
  Status GetObjectsFrom(MachineId src, CellId subject, Predicate predicate,
                        std::vector<CellId>* out);

  struct Triple {
    Predicate predicate;
    CellId object;
  };

  /// Zero-copy scan of every entity hosted on `machine`.
  using EntityVisitor =
      std::function<void(CellId id, EntityType type,
                         const std::function<void(
                             const std::function<void(Predicate, CellId)>&)>&
                             for_each_triple)>;
  Status ScanLocal(MachineId machine, const EntityVisitor& visit);

 private:
  static std::string EncodeEntity(EntityType type);

  cloud::MemoryCloud* cloud_;
};

/// The four SPARQL-style benchmark queries (Fig 14b). Each runs as a
/// distributed job: machine-parallel local scans feeding (possibly remote)
/// cell lookups, all metered through the fabric so query time is modeled
/// per machine count.
class SparqlQueries {
 public:
  struct QueryStats {
    double modeled_millis = 0;
    std::uint64_t results = 0;
    std::uint64_t remote_lookups = 0;
  };

  SparqlQueries(RdfStore* store, net::CostModel cost_model)
      : store_(store), cost_model_(cost_model) {}

  /// Q1: students taking a given course.
  Status StudentsOfCourse(CellId course, QueryStats* stats);
  /// Q2: (department, professor) pairs within a given university.
  Status ProfessorsOfUniversity(CellId university, QueryStats* stats);
  /// Q3: students whose advisor teaches a course they take (triangle).
  Status StudentsAdvisedByTheirTeacher(QueryStats* stats);
  /// Q4: professors (transitively) affiliated with a given university.
  Status ProfessorsAffiliatedWith(CellId university, QueryStats* stats);

 private:
  /// Runs `body(machine)` once per slave under the fabric meter and folds
  /// the phase into stats.
  Status RunParallelScan(
      const std::function<Status(MachineId)>& body, QueryStats* stats);

  RdfStore* store_;
  net::CostModel cost_model_;
};

}  // namespace trinity::query

#endif  // TRINITY_QUERY_RDF_STORE_H_
