#include "query/rdf_store.h"

#include <cstring>
#include <unordered_set>

#include "common/serializer.h"
#include "storage/memory_trunk.h"

namespace trinity::query {

std::string RdfStore::EncodeEntity(EntityType type) {
  BinaryWriter writer;
  writer.PutU32(static_cast<std::uint32_t>(type));
  writer.PutU32(0);  // Triple count.
  return writer.Release();
}

Status RdfStore::AddEntity(CellId id, EntityType type) {
  return cloud_->AddCell(id, Slice(EncodeEntity(type)));
}

Status RdfStore::AddTriple(CellId subject, Predicate predicate,
                           CellId object) {
  // Triples append at the blob's end; the count lives in the header, which
  // we derive from the cell size instead of rewriting (12 bytes per entry).
  char raw[12];
  const std::uint32_t p = static_cast<std::uint32_t>(predicate);
  std::memcpy(raw, &p, 4);
  std::memcpy(raw + 4, &object, 8);
  return cloud_->AppendToCell(subject, Slice(raw, 12));
}

namespace {

bool ParseEntity(Slice blob, EntityType* type, std::size_t* triples) {
  if (blob.size() < 8 || (blob.size() - 8) % 12 != 0) return false;
  std::uint32_t raw_type = 0;
  std::memcpy(&raw_type, blob.data(), 4);
  *type = static_cast<EntityType>(raw_type);
  *triples = (blob.size() - 8) / 12;
  return true;
}

void ReadTriple(Slice blob, std::size_t index, Predicate* predicate,
                CellId* object) {
  std::uint32_t p = 0;
  std::memcpy(&p, blob.data() + 8 + index * 12, 4);
  std::memcpy(object, blob.data() + 8 + index * 12 + 4, 8);
  *predicate = static_cast<Predicate>(p);
}

}  // namespace

Status RdfStore::GetType(CellId id, EntityType* out) {
  std::string blob;
  Status s = cloud_->GetCell(id, &blob);
  if (!s.ok()) return s;
  std::size_t triples = 0;
  if (!ParseEntity(Slice(blob), out, &triples)) {
    return Status::Corruption("malformed entity cell");
  }
  return Status::OK();
}

Status RdfStore::GetObjects(CellId subject, Predicate predicate,
                            std::vector<CellId>* out) {
  return GetObjectsFrom(cloud_->client_id(), subject, predicate, out);
}

Status RdfStore::GetObjectsFrom(MachineId src, CellId subject,
                                Predicate predicate,
                                std::vector<CellId>* out) {
  out->clear();
  std::string blob;
  Status s = cloud_->GetCellFrom(src, subject, &blob);
  if (!s.ok()) return s;
  EntityType type;
  std::size_t triples = 0;
  if (!ParseEntity(Slice(blob), &type, &triples)) {
    return Status::Corruption("malformed entity cell");
  }
  for (std::size_t i = 0; i < triples; ++i) {
    Predicate p;
    CellId object;
    ReadTriple(Slice(blob), i, &p, &object);
    if (p == predicate) out->push_back(object);
  }
  return Status::OK();
}

Status RdfStore::ScanLocal(MachineId machine, const EntityVisitor& visit) {
  storage::MemoryStorage* store = cloud_->storage(machine);
  if (store == nullptr) return Status::NotFound("not a slave");
  for (TrunkId t : store->trunk_ids()) {
    storage::MemoryTrunk* trunk = store->trunk(t);
    if (trunk == nullptr) continue;
    for (CellId id : trunk->CellIds()) {
      storage::MemoryTrunk::ConstAccessor accessor;
      Status s = trunk->Access(id, &accessor);
      if (!s.ok()) continue;
      const Slice blob = accessor.data();
      EntityType type;
      std::size_t triples = 0;
      if (!ParseEntity(blob, &type, &triples)) continue;
      visit(id, type,
            [blob, triples](const std::function<void(Predicate, CellId)>& fn) {
              for (std::size_t i = 0; i < triples; ++i) {
                Predicate p;
                CellId object;
                ReadTriple(blob, i, &p, &object);
                fn(p, object);
              }
            });
    }
  }
  return Status::OK();
}

Status SparqlQueries::RunParallelScan(
    const std::function<Status(MachineId)>& body, QueryStats* stats) {
  net::Fabric& fabric = store_->cloud()->fabric();
  fabric.ResetMeters();
  for (MachineId m = 0; m < store_->cloud()->num_slaves(); ++m) {
    net::Fabric::MeterScope meter(fabric, m);
    Status s = body(m);
    if (!s.ok()) return s;
  }
  fabric.FlushAll();
  stats->modeled_millis += cost_model_.PhaseSeconds(fabric) * 1000.0;
  stats->remote_lookups += fabric.stats().sync_calls;
  return Status::OK();
}

Status SparqlQueries::StudentsOfCourse(CellId course, QueryStats* stats) {
  *stats = QueryStats();
  return RunParallelScan(
      [&](MachineId m) {
        return store_->ScanLocal(m, [&](CellId, EntityType type,
                                        const auto& for_each_triple) {
          if (type != EntityType::kStudent) return;
          for_each_triple([&](Predicate p, CellId object) {
            if (p == Predicate::kTakesCourse && object == course) {
              ++stats->results;
            }
          });
        });
      },
      stats);
}

Status SparqlQueries::ProfessorsOfUniversity(CellId university,
                                             QueryStats* stats) {
  *stats = QueryStats();
  // Scan professors; follow worksFor -> department -> subOrganizationOf.
  return RunParallelScan(
      [&](MachineId m) {
        Status failure;
        Status s = store_->ScanLocal(m, [&](CellId, EntityType type,
                                            const auto& for_each_triple) {
          if (type != EntityType::kProfessor) return;
          for_each_triple([&](Predicate p, CellId department) {
            if (p != Predicate::kWorksFor) return;
            std::vector<CellId> universities;
            Status ls = store_->GetObjectsFrom(
                m, department, Predicate::kSubOrganizationOf, &universities);
            if (!ls.ok()) {
              failure = ls;
              return;
            }
            for (CellId u : universities) {
              if (u == university) ++stats->results;
            }
          });
        });
        if (!s.ok()) return s;
        return failure;
      },
      stats);
}

Status SparqlQueries::StudentsAdvisedByTheirTeacher(QueryStats* stats) {
  *stats = QueryStats();
  // Triangle: student -advisor-> professor -teacherOf-> course
  //           student -takesCourse-> course.
  return RunParallelScan(
      [&](MachineId m) {
        Status failure;
        Status s = store_->ScanLocal(m, [&](CellId, EntityType type,
                                            const auto& for_each_triple) {
          if (type != EntityType::kStudent) return;
          std::unordered_set<CellId> courses;
          std::vector<CellId> advisors;
          for_each_triple([&](Predicate p, CellId object) {
            if (p == Predicate::kTakesCourse) courses.insert(object);
            if (p == Predicate::kAdvisor) advisors.push_back(object);
          });
          for (CellId advisor : advisors) {
            std::vector<CellId> taught;
            Status ls = store_->GetObjectsFrom(m, advisor,
                                               Predicate::kTeacherOf, &taught);
            if (!ls.ok()) {
              failure = ls;
              return;
            }
            for (CellId course : taught) {
              if (courses.count(course) != 0) {
                ++stats->results;
                break;
              }
            }
          }
        });
        if (!s.ok()) return s;
        return failure;
      },
      stats);
}

Status SparqlQueries::ProfessorsAffiliatedWith(CellId university,
                                               QueryStats* stats) {
  *stats = QueryStats();
  // Path: professor -worksFor-> department -subOrganizationOf-> university,
  // plus students of those professors via -advisor->. Counts professors.
  return RunParallelScan(
      [&](MachineId m) {
        Status failure;
        Status s = store_->ScanLocal(m, [&](CellId, EntityType type,
                                            const auto& for_each_triple) {
          if (type != EntityType::kDepartment) return;
          bool affiliated = false;
          for_each_triple([&](Predicate p, CellId object) {
            if (p == Predicate::kSubOrganizationOf && object == university) {
              affiliated = true;
            }
          });
          if (!affiliated) return;
          // Departments don't index their professors; this direction is
          // resolved by the per-machine professor scan in Q2. Here we count
          // via reverse scan of local professors referencing us — done in
          // the same pass for simplicity.
        });
        if (!s.ok()) return s;
        // Second local pass: professors working for affiliated departments.
        s = store_->ScanLocal(m, [&](CellId, EntityType type,
                                     const auto& for_each_triple) {
          if (type != EntityType::kProfessor) return;
          for_each_triple([&](Predicate p, CellId department) {
            if (p != Predicate::kWorksFor) return;
            std::vector<CellId> universities;
            Status ls = store_->GetObjectsFrom(
                m, department, Predicate::kSubOrganizationOf, &universities);
            if (!ls.ok()) {
              failure = ls;
              return;
            }
            for (CellId u : universities) {
              if (u == university) ++stats->results;
            }
          });
        });
        if (!s.ok()) return s;
        return failure;
      },
      stats);
}

}  // namespace trinity::query
