#include "tfs/tfs.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/hash.h"
#include "common/logging.h"
#include "common/serializer.h"

namespace trinity::tfs {

namespace fs = std::filesystem;

namespace {

Status WriteLocalFileAtomic(const std::string& path, Slice data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IOError("short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IOError("rename failed: " + ec.message());
  return Status::OK();
}

Status ReadLocalFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

}  // namespace

Status Tfs::Open(const Options& options, std::unique_ptr<Tfs>* out) {
  if (options.root.empty()) {
    return Status::InvalidArgument("TFS root must not be empty");
  }
  if (options.num_datanodes < 1) {
    return Status::InvalidArgument("need at least one datanode");
  }
  if (options.block_size == 0) {
    return Status::InvalidArgument("block size must be positive");
  }
  Options normalized = options;
  if (normalized.replication < 1) normalized.replication = 1;
  if (normalized.replication > normalized.num_datanodes) {
    normalized.replication = normalized.num_datanodes;
  }
  std::unique_ptr<Tfs> instance(new Tfs(normalized));
  Status s = instance->Init();
  if (!s.ok()) return s;
  *out = std::move(instance);
  return Status::OK();
}

Status Tfs::Init() {
  std::error_code ec;
  fs::create_directories(options_.root + "/namenode", ec);
  if (ec) return Status::IOError("mkdir namenode: " + ec.message());
  for (int i = 0; i < options_.num_datanodes; ++i) {
    fs::create_directories(options_.root + "/dn" + std::to_string(i), ec);
    if (ec) return Status::IOError("mkdir datanode: " + ec.message());
  }
  datanode_alive_.assign(options_.num_datanodes, true);
  std::lock_guard<std::mutex> lock(mu_);
  return LoadManifestLocked();
}

std::string Tfs::BlockPath(int datanode, std::uint64_t block_id) const {
  return options_.root + "/dn" + std::to_string(datanode) + "/blk_" +
         std::to_string(block_id);
}

Status Tfs::WriteBlockLocked(Slice data, BlockLocation* loc) {
  loc->block_id = next_block_id_++;
  loc->length = static_cast<std::uint32_t>(data.size());
  loc->checksum = HashSlice(data);
  loc->replicas.clear();
  // Round-robin placement over alive datanodes.
  int placed = 0;
  for (int attempt = 0;
       attempt < options_.num_datanodes && placed < options_.replication;
       ++attempt) {
    const int dn = next_placement_;
    next_placement_ = (next_placement_ + 1) % options_.num_datanodes;
    if (!datanode_alive_[dn]) continue;
    Status s = WriteLocalFileAtomic(BlockPath(dn, loc->block_id), data);
    if (!s.ok()) return s;
    loc->replicas.push_back(dn);
    ++placed;
    bytes_written_.fetch_add(data.size(), std::memory_order_relaxed);
  }
  if (placed == 0) return Status::Unavailable("no alive datanode");
  ++stats_.blocks_written;
  return Status::OK();
}

Status Tfs::ReadBlockLocked(const BlockLocation& loc, std::string* out) {
  bool first = true;
  for (int dn : loc.replicas) {
    if (!datanode_alive_[dn]) {
      first = false;
      continue;
    }
    std::string data;
    Status s = ReadLocalFile(BlockPath(dn, loc.block_id), &data);
    if (s.ok()) {
      if (data.size() != loc.length || HashSlice(data) != loc.checksum) {
        TRINITY_WARN("checksum mismatch for block %llu on dn%d",
                     static_cast<unsigned long long>(loc.block_id), dn);
        first = false;
        continue;  // Corrupt replica; try the next one.
      }
      if (!first) ++stats_.replica_read_failovers;
      ++stats_.blocks_read;
      bytes_read_.fetch_add(data.size(), std::memory_order_relaxed);
      *out = std::move(data);
      return Status::OK();
    }
    first = false;
  }
  return Status::Unavailable("all replicas unreachable or corrupt");
}

Status Tfs::DeleteBlocksLocked(const FileEntry& entry) {
  for (const auto& block : entry.blocks) {
    for (int dn : block.replicas) {
      std::error_code ec;
      fs::remove(BlockPath(dn, block.block_id), ec);
      // Dead datanodes may fail removal; garbage is tolerated like in HDFS.
    }
  }
  return Status::OK();
}

Status Tfs::WriteFile(const std::string& path, Slice data) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  std::lock_guard<std::mutex> lock(mu_);
  FileEntry entry;
  entry.length = data.size();
  std::size_t offset = 0;
  do {
    const std::size_t chunk =
        std::min<std::size_t>(options_.block_size, data.size() - offset);
    BlockLocation loc;
    Status s = WriteBlockLocked(Slice(data.data() + offset, chunk), &loc);
    if (!s.ok()) return s;
    entry.blocks.push_back(std::move(loc));
    offset += chunk;
  } while (offset < data.size());

  auto it = files_.find(path);
  if (it != files_.end()) {
    DeleteBlocksLocked(it->second);
    it->second = std::move(entry);
  } else {
    files_.emplace(path, std::move(entry));
  }
  return PersistManifestLocked();
}

Status Tfs::ReadFile(const std::string& path, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  out->clear();
  out->reserve(it->second.length);
  for (const auto& block : it->second.blocks) {
    std::string chunk;
    Status s = ReadBlockLocked(block, &chunk);
    if (!s.ok()) return s;
    out->append(chunk);
  }
  ++stats_.files_read;
  return Status::OK();
}

Status Tfs::CreateExclusive(const std::string& path, Slice data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.count(path) != 0) return Status::AlreadyExists(path);
  }
  return WriteFile(path, data);
}

Status Tfs::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  DeleteBlocksLocked(it->second);
  files_.erase(it);
  return PersistManifestLocked();
}

bool Tfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

std::vector<std::string> Tfs::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> result;
  for (const auto& [path, entry] : files_) {
    (void)entry;
    if (path.compare(0, prefix.size(), prefix) == 0) result.push_back(path);
  }
  return result;
}

Status Tfs::KillDatanode(int datanode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (datanode < 0 || datanode >= options_.num_datanodes) {
    return Status::InvalidArgument("bad datanode id");
  }
  datanode_alive_[datanode] = false;
  return Status::OK();
}

Status Tfs::ReviveDatanode(int datanode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (datanode < 0 || datanode >= options_.num_datanodes) {
    return Status::InvalidArgument("bad datanode id");
  }
  datanode_alive_[datanode] = true;
  return Status::OK();
}

bool Tfs::IsDatanodeAlive(int datanode) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (datanode < 0 || datanode >= options_.num_datanodes) return false;
  return datanode_alive_[datanode];
}

Tfs::Stats Tfs::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  return s;
}

Status Tfs::PersistManifestLocked() {
  BinaryWriter writer;
  writer.PutU64(next_block_id_);
  writer.PutU32(static_cast<std::uint32_t>(files_.size()));
  for (const auto& [path, entry] : files_) {
    writer.PutString(path);
    writer.PutU64(entry.length);
    writer.PutU32(static_cast<std::uint32_t>(entry.blocks.size()));
    for (const auto& block : entry.blocks) {
      writer.PutU64(block.block_id);
      writer.PutU32(block.length);
      writer.PutU64(block.checksum);
      writer.PutU32(static_cast<std::uint32_t>(block.replicas.size()));
      for (int dn : block.replicas) writer.PutI32(dn);
    }
  }
  return WriteLocalFileAtomic(options_.root + "/namenode/manifest",
                              Slice(writer.buffer()));
}

Status Tfs::LoadManifestLocked() {
  std::string data;
  Status s = ReadLocalFile(options_.root + "/namenode/manifest", &data);
  if (!s.ok()) return Status::OK();  // Fresh filesystem.
  BinaryReader reader{Slice(data)};
  std::uint32_t file_count = 0;
  if (!reader.GetU64(&next_block_id_) || !reader.GetU32(&file_count)) {
    return Status::Corruption("manifest header");
  }
  files_.clear();
  for (std::uint32_t i = 0; i < file_count; ++i) {
    std::string path;
    FileEntry entry;
    std::uint32_t block_count = 0;
    if (!reader.GetString(&path) || !reader.GetU64(&entry.length) ||
        !reader.GetU32(&block_count)) {
      return Status::Corruption("manifest file entry");
    }
    for (std::uint32_t b = 0; b < block_count; ++b) {
      BlockLocation loc;
      std::uint32_t replica_count = 0;
      if (!reader.GetU64(&loc.block_id) || !reader.GetU32(&loc.length) ||
          !reader.GetU64(&loc.checksum) || !reader.GetU32(&replica_count)) {
        return Status::Corruption("manifest block entry");
      }
      for (std::uint32_t r = 0; r < replica_count; ++r) {
        std::int32_t dn = 0;
        if (!reader.GetI32(&dn)) return Status::Corruption("manifest replica");
        loc.replicas.push_back(dn);
      }
      entry.blocks.push_back(std::move(loc));
    }
    files_.emplace(std::move(path), std::move(entry));
  }
  return Status::OK();
}

}  // namespace trinity::tfs
