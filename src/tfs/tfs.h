#ifndef TRINITY_TFS_TFS_H_
#define TRINITY_TFS_TFS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace trinity::tfs {

/// Trinity File System — the shared, fault-tolerant distributed file system
/// the paper layers under the memory cloud ("similar to HDFS", §3). Memory
/// trunks, the primary addressing table, BSP checkpoints and async snapshots
/// are all persisted here.
///
/// This implementation simulates a small HDFS-like deployment on local disk:
/// a namenode (in-memory block map, persisted manifest) plus N datanode
/// directories. Every file is split into fixed-size blocks; each block is
/// replicated onto `replication` distinct datanodes and checksummed. Killing
/// a datanode makes its replicas unreadable, exercising the same failover
/// paths a real deployment would take.
class Tfs {
 public:
  struct Options {
    std::string root;        ///< Directory that holds namenode + datanodes.
    int num_datanodes = 3;   ///< Simulated datanode count.
    int replication = 2;     ///< Replicas per block (clamped to datanodes).
    std::uint64_t block_size = 1 << 20;  ///< Bytes per block.
  };

  struct Stats {
    std::uint64_t blocks_written = 0;
    std::uint64_t blocks_read = 0;
    std::uint64_t replica_read_failovers = 0;  ///< Reads served by a backup.
    std::uint64_t files_read = 0;  ///< Whole-file ReadFile completions.
    std::uint64_t bytes_written = 0;  ///< Payload bytes (per replica write).
    std::uint64_t bytes_read = 0;     ///< Payload bytes served to readers.
  };

  /// Opens (or creates) a TFS instance rooted at options.root. Reloads the
  /// persisted manifest if one exists, so files survive process restarts.
  static Status Open(const Options& options, std::unique_ptr<Tfs>* out);

  ~Tfs() = default;
  Tfs(const Tfs&) = delete;
  Tfs& operator=(const Tfs&) = delete;

  /// Atomically creates or replaces `path` with `data`.
  Status WriteFile(const std::string& path, Slice data);

  /// Reads the whole file. Fails over to backup replicas when a datanode
  /// holding the primary replica is dead.
  Status ReadFile(const std::string& path, std::string* out);

  /// Creates the file only if it does not already exist. This is the fencing
  /// primitive the leader-election protocol uses ("marks a flag on the shared
  /// distributed fault-tolerant file system", §6.2).
  Status CreateExclusive(const std::string& path, Slice data);

  Status DeleteFile(const std::string& path);
  bool Exists(const std::string& path) const;

  /// All file paths starting with `prefix`, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  /// Simulated datanode failure / recovery.
  Status KillDatanode(int datanode);
  Status ReviveDatanode(int datanode);
  bool IsDatanodeAlive(int datanode) const;
  int num_datanodes() const { return options_.num_datanodes; }

  Stats stats() const;

  /// Lock-free byte meters (relaxed atomics). Safe to poll from spill and
  /// recovery paths without touching the TFS mutex; stats() folds the same
  /// values into its snapshot.
  std::uint64_t bytes_written() const noexcept {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_read() const noexcept {
    return bytes_read_.load(std::memory_order_relaxed);
  }

 private:
  struct BlockLocation {
    std::uint64_t block_id = 0;
    std::uint32_t length = 0;
    std::uint64_t checksum = 0;
    std::vector<int> replicas;  ///< Datanodes holding this block.
  };

  struct FileEntry {
    std::vector<BlockLocation> blocks;
    std::uint64_t length = 0;
  };

  explicit Tfs(Options options) : options_(std::move(options)) {}

  Status Init();
  Status PersistManifestLocked();
  Status LoadManifestLocked();
  std::string BlockPath(int datanode, std::uint64_t block_id) const;
  Status WriteBlockLocked(Slice data, BlockLocation* loc);
  Status ReadBlockLocked(const BlockLocation& loc, std::string* out);
  Status DeleteBlocksLocked(const FileEntry& entry);

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, FileEntry> files_;
  std::vector<bool> datanode_alive_;
  std::uint64_t next_block_id_ = 1;
  int next_placement_ = 0;  ///< Round-robin placement cursor.
  Stats stats_;
  // Byte meters live outside stats_ as relaxed atomics so they can be read
  // without the mutex (PR 5 contention-counter style).
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace trinity::tfs

#endif  // TRINITY_TFS_TFS_H_
