#include "common/logging.h"

#include <atomic>
#include <cstdarg>

namespace trinity {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

void LogV(LogLevel level, const char* file, int line, const char* fmt, ...) {
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line, msg);
}

}  // namespace internal_logging

}  // namespace trinity
