#ifndef TRINITY_COMMON_HASH_H_
#define TRINITY_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace trinity {

/// Finalizer-quality 64-bit mixer (splitmix64 / murmur3 fmix64 family).
/// Used both to map a CellId to a memory trunk (first-level hash, paper §3)
/// and to index within a trunk's hash table (second-level hash).
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// First-level hash: maps a 64-bit key to a p-bit trunk index in
/// [0, 2^p - 1]. All replicas of the addressing table agree on this mapping.
inline std::uint32_t TrunkHash(std::uint64_t key, int p_bits) {
  return static_cast<std::uint32_t>(Mix64(key) >> (64 - p_bits));
}

/// Second-level hash: position of a key inside a trunk's hash table.
inline std::uint64_t InTrunkHash(std::uint64_t key) {
  // Distinct stream from TrunkHash so the two levels are independent.
  return Mix64(key ^ 0xa0761d6478bd642fULL);
}

/// FNV-1a over arbitrary bytes; used for checksums and string keys.
inline std::uint64_t HashBytes(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t HashSlice(const Slice& s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace trinity

#endif  // TRINITY_COMMON_HASH_H_
