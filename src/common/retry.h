#ifndef TRINITY_COMMON_RETRY_H_
#define TRINITY_COMMON_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/call_context.h"
#include "common/status.h"

namespace trinity {

/// Cluster-wide token bucket bounding retry amplification (the Finagle /
/// gRPC "retry budget" idea): first attempts *earn* a fraction of a token,
/// every re-attempt *spends* a whole token. When most traffic succeeds the
/// bucket stays full and retries are free; when a primary dies and every
/// request starts failing, the bucket drains after `capacity` retries and
/// further requests fail fast with ResourceExhausted instead of multiplying
/// load on the recovering cluster by max_attempts.
///
/// Thread-safe; all state is atomic.
class RetryBudget {
 public:
  struct Options {
    double capacity = 32.0;      ///< Max banked retry tokens.
    double refill_per_op = 0.1;  ///< Tokens earned per first attempt.
    double initial = 32.0;       ///< Starting balance.
  };

  RetryBudget() : RetryBudget(Options{}) {}
  explicit RetryBudget(const Options& options)
      : options_(options), tokens_(options.initial) {}

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// Called once per operation (not per attempt) to earn budget.
  void OnAttempt() {
    double cur = tokens_.load(std::memory_order_relaxed);
    double next;
    do {
      next = cur + options_.refill_per_op;
      if (next > options_.capacity) next = options_.capacity;
    } while (!tokens_.compare_exchange_weak(cur, next,
                                            std::memory_order_relaxed));
  }

  /// Spends one token for a re-attempt; false means the retry must not run.
  bool TryAcquire() {
    double cur = tokens_.load(std::memory_order_relaxed);
    do {
      if (cur < 1.0) {
        denied_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    } while (!tokens_.compare_exchange_weak(cur, cur - 1.0,
                                            std::memory_order_relaxed));
    granted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  double tokens() const { return tokens_.load(std::memory_order_relaxed); }
  std::uint64_t granted() const {
    return granted_.load(std::memory_order_relaxed);
  }
  std::uint64_t denied() const {
    return denied_.load(std::memory_order_relaxed);
  }

 private:
  const Options options_;
  std::atomic<double> tokens_;
  std::atomic<std::uint64_t> granted_{0};
  std::atomic<std::uint64_t> denied_{0};
};

/// Exponential-backoff retry schedule shared by every backoff loop in the
/// engine (RouteOp, replica ship, ISR shrink, heartbeats). Backoff waits
/// are *simulated* time: Run charges them through the caller-supplied
/// `charge` hook (normally Fabric::AddCpuMicros) and, when a CallContext is
/// present, against the request's deadline budget.
///
/// Jitter is deterministic: the backoff for (jitter_seed, salt, retry) is a
/// pure function, so seeded chaos runs replay identically while distinct
/// callers (different salts) still decorrelate after a failover.
struct RetryPolicy {
  int max_attempts = 4;
  double backoff_base_micros = 200.0;
  double backoff_multiplier = 2.0;
  /// Backoff is scaled by a factor in [1-j, 1+j]; 0 disables jitter.
  double jitter_fraction = 0.25;
  std::uint64_t jitter_seed = 0;

  /// Jittered backoff before re-attempt `retry` (1-based).
  double BackoffMicros(int retry, std::uint64_t salt) const;

  struct RunHooks {
    /// Deadline/cancellation/retry-budget source; may be null.
    CallContext* ctx = nullptr;
    /// Decorrelates callers sharing one policy (e.g. hash of cell id).
    std::uint64_t salt = 0;
    /// Accounts a backoff wait (simulated micros), e.g. AddCpuMicros(src).
    std::function<void(double)> charge;
    /// Extra per-retry predicate; returning false stops with the last
    /// attempt's status (e.g. "replica died — shrink, don't retry").
    std::function<bool()> keep_trying;
  };

  /// Runs `attempt` (passed the 0-based attempt index) until it returns a
  /// non-retryable status (see Status::IsRetryable) or attempts are
  /// exhausted. Between attempts, in order: stop if keep_trying() is
  /// false (returning the last status); stop with Aborted/DeadlineExceeded
  /// if the context is cancelled/expired or cannot afford the next backoff
  /// wait; stop with ResourceExhausted if the retry budget is empty;
  /// otherwise charge the jittered backoff and go again.
  Status Run(const RunHooks& hooks,
             const std::function<Status(int)>& attempt) const;
};

}  // namespace trinity

#endif  // TRINITY_COMMON_RETRY_H_
