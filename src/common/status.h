#ifndef TRINITY_COMMON_STATUS_H_
#define TRINITY_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace trinity {

/// Result of an operation that can fail. Trinity never throws exceptions
/// across its public API; fallible calls return a Status (or set one through
/// an output parameter) in the style of RocksDB / LevelDB.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kAlreadyExists = 2,
    kCorruption = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kOutOfMemory = 6,
    kUnavailable = 7,   // machine down / addressing table stale
    kTimedOut = 8,
    kAborted = 9,
    kNotSupported = 10,
    kDeadlineExceeded = 11,   // request deadline/budget spent
    kResourceExhausted = 12,  // load shed / retry budget empty
  };

  /// Machine-readable refinement of kAborted. Three very different
  /// conditions share the Aborted code and callers must not have to parse
  /// messages to tell them apart:
  ///  * kGuardFailed   — a MultiOp/CAS compare guard did not hold. Terminal
  ///                     for the op; the caller owns the re-read-and-retry
  ///                     decision (its expected value is simply stale).
  ///  * kTxnConflict   — an optimistic transaction lost a race (stale read
  ///                     set, another transaction's write intent, aborted by
  ///                     a recovery sweep). Retrying the *whole transaction*
  ///                     is expected to succeed, so IsRetryable() is true.
  ///  * kFenced        — the caller is a deposed, stale primary rejected by
  ///                     the replication epoch fence. Never retried: the
  ///                     machine must re-sync its view of the world first.
  enum class Subcode : unsigned char {
    kNone = 0,
    kGuardFailed = 1,
    kTxnConflict = 2,
    kFenced = 3,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg = "") {
    return Status(Code::kOutOfMemory, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Aborted(std::string msg, Subcode subcode) {
    Status s(Code::kAborted, std::move(msg));
    s.subcode_ = subcode;
    return s;
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsOutOfMemory() const { return code_ == Code::kOutOfMemory; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }

  bool IsGuardFailed() const {
    return IsAborted() && subcode_ == Subcode::kGuardFailed;
  }
  bool IsTxnConflict() const {
    return IsAborted() && subcode_ == Subcode::kTxnConflict;
  }
  bool IsFenced() const {
    return IsAborted() && subcode_ == Subcode::kFenced;
  }

  /// True for transient failures where another attempt may succeed:
  /// machine restarting, stale addressing table, dropped call — and
  /// Aborted(kTxnConflict), where re-running the transaction is the
  /// designed response to losing an optimistic race. Terminal codes —
  /// DeadlineExceeded, ResourceExhausted, and every other Aborted flavor
  /// (epoch fencing, failed guards, cancellation) — are never retried.
  bool IsRetryable() const {
    return IsUnavailable() || IsTimedOut() || IsTxnConflict();
  }

  Code code() const { return code_; }
  Subcode subcode() const { return subcode_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "<code>: <message>" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  Subcode subcode_ = Subcode::kNone;
  std::string msg_;
};

}  // namespace trinity

#endif  // TRINITY_COMMON_STATUS_H_
