#ifndef TRINITY_COMMON_CALL_CONTEXT_H_
#define TRINITY_COMMON_CALL_CONTEXT_H_

#include <atomic>
#include <limits>
#include <string>

#include "common/status.h"

namespace trinity {

class RetryBudget;

/// Per-request context threaded down the serving path: frontend ->
/// MemoryCloud::RouteOp/MultiOp -> Fabric::Call -> traversal rounds.
///
/// Deadlines are expressed in *simulated* microseconds, the same unit the
/// fabric charges to per-machine CPU meters. Everything that would make a
/// real request slow consumes from the budget deterministically: retry
/// backoff waits, injected straggler delays (net::FaultInjector
/// call_delay), admission-queue waits, and modeled traversal round cost.
/// Once the budget is spent the layers return Status::DeadlineExceeded
/// instead of continuing to retry through a failover.
///
/// A CallContext may also carry a cluster-wide RetryBudget (token bucket);
/// RetryPolicy::Run consults it before every re-attempt so a dead primary
/// cannot trigger a retry storm.
///
/// Thread-safety: Consume/Cancel/queries are safe to call concurrently
/// (the traversal coordinator and fabric callers may share one context).
class CallContext {
 public:
  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

  CallContext() = default;
  explicit CallContext(double deadline_micros,
                       RetryBudget* retry_budget = nullptr)
      : deadline_micros_(deadline_micros > 0 ? deadline_micros : kNoDeadline),
        retry_budget_(retry_budget) {}

  CallContext(const CallContext&) = delete;
  CallContext& operator=(const CallContext&) = delete;

  bool has_deadline() const { return deadline_micros_ != kNoDeadline; }
  double deadline_micros() const { return deadline_micros_; }
  double consumed_micros() const {
    return consumed_.load(std::memory_order_relaxed);
  }
  double remaining_micros() const {
    return deadline_micros_ - consumed_micros();
  }
  bool expired() const { return has_deadline() && remaining_micros() <= 0; }

  /// Charges `micros` of simulated time against the deadline budget.
  void Consume(double micros) {
    if (micros <= 0) return;
    consumed_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Marks the request cancelled; in-flight layers observe it at the next
  /// Check() boundary and unwind with Aborted.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return external_cancel_ != nullptr &&
           external_cancel_->load(std::memory_order_relaxed);
  }

  /// Links an externally owned cancellation flag (e.g. a client token);
  /// must outlive this context. cancelled() is the OR of both flags.
  void set_cancel_token(const std::atomic<bool>* token) {
    external_cancel_ = token;
  }

  RetryBudget* retry_budget() const { return retry_budget_; }
  void set_retry_budget(RetryBudget* budget) { retry_budget_ = budget; }

  /// OK while the request may proceed; Aborted once cancelled;
  /// DeadlineExceeded once the simulated budget is spent.
  Status Check() const {
    if (cancelled()) return Status::Aborted("request cancelled");
    if (expired()) {
      return Status::DeadlineExceeded(
          "deadline of " + std::to_string(deadline_micros_) +
          " simulated micros exhausted");
    }
    return Status::OK();
  }

 private:
  double deadline_micros_ = kNoDeadline;
  std::atomic<double> consumed_{0.0};
  std::atomic<bool> cancelled_{false};
  const std::atomic<bool>* external_cancel_ = nullptr;
  RetryBudget* retry_budget_ = nullptr;
};

}  // namespace trinity

#endif  // TRINITY_COMMON_CALL_CONTEXT_H_
