#include "common/random.h"

#include <cmath>

namespace trinity {

std::uint64_t Random::PowerLaw(double gamma, std::uint64_t max_value) {
  if (max_value <= 1) return 1;
  // Inverse CDF of the continuous Pareto distribution truncated at
  // [1, max_value], rounded down to an integer degree.
  const double one_minus_gamma = 1.0 - gamma;
  const double xmax = static_cast<double>(max_value);
  const double u = NextDouble();
  double value;
  if (std::fabs(one_minus_gamma) < 1e-9) {
    value = std::exp(u * std::log(xmax));
  } else {
    const double a = 1.0;
    const double b = std::pow(xmax, one_minus_gamma);
    value = std::pow(a + u * (b - a), 1.0 / one_minus_gamma);
  }
  if (value < 1.0) value = 1.0;
  if (value > xmax) value = xmax;
  return static_cast<std::uint64_t>(value);
}

}  // namespace trinity
