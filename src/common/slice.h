#ifndef TRINITY_COMMON_SLICE_H_
#define TRINITY_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace trinity {

/// Non-owning view over a contiguous byte region, used for zero-copy access
/// to cell payloads inside memory trunks. The referenced storage must outlive
/// the Slice (or be pinned through a CellLockGuard while the Slice is live).
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, std::size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(s ? std::strlen(s) : 0) {}  // NOLINT

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first n bytes from the view.
  void RemovePrefix(std::size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToView() const { return std::string_view(data_, size_); }

  int Compare(const Slice& other) const;

 private:
  const char* data_;
  std::size_t size_;
};

inline int Slice::Compare(const Slice& other) const {
  const std::size_t min_len = size_ < other.size_ ? size_ : other.size_;
  int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
  if (r == 0) {
    if (size_ < other.size_) {
      r = -1;
    } else if (size_ > other.size_) {
      r = 1;
    }
  }
  return r;
}

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

}  // namespace trinity

#endif  // TRINITY_COMMON_SLICE_H_
