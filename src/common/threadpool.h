#ifndef TRINITY_COMMON_THREADPOOL_H_
#define TRINITY_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trinity {

/// Fixed-size worker pool. Trinity slaves run their message handlers and BSP
/// partition jobs on a pool like this; WaitIdle() gives the bulk-synchronous
/// barrier between supersteps.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion —
  /// the call itself is the barrier. The range is split into at most
  /// num_threads() contiguous chunks (one task each) so a worker touches a
  /// run of adjacent indices instead of interleaving with its neighbors;
  /// n <= 1 (and a single-thread pool) runs inline on the calling thread.
  /// fn must not call ParallelFor on the same pool (a worker would block
  /// waiting for tasks that only it could run).
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Contiguous index range [begin, end) dispatched as one task.
  struct Shard {
    int begin;
    int end;
  };

  /// Splits [0, n) into at most max_shards contiguous shards of
  /// approximately equal *total cost* (caller-supplied per-item cost, e.g. a
  /// vertex's adjacency length). Fixed-size chunks serialize on runs of
  /// heavy items — a power-law graph's hub vertices all land in one chunk —
  /// so cost-balanced splitting is what keeps skewed ParallelFor loops from
  /// degenerating to single-threaded. A shard never exceeds the ideal cost
  /// by more than one item; zero-total-cost ranges fall back to equal-count
  /// chunks.
  static std::vector<Shard> SplitWeighted(
      int n, const std::function<double(int)>& cost, int max_shards);

  /// Runs fn(shard_index, begin, end) for every shard and waits for
  /// completion (one task per shard). Callers that need per-worker
  /// accumulators index them by shard and merge after the call returns —
  /// the analytics kernels dispatch this way. A single shard (or empty
  /// vector) runs inline.
  void ParallelForShards(const std::vector<Shard>& shards,
                         const std::function<void(int, int, int)>& fn);

  /// Cost-weighted ParallelFor: shards are balanced by caller-supplied
  /// per-item cost instead of item count, with mild over-partitioning
  /// (4x num_threads) so an imperfect cost model still spreads. Semantics
  /// otherwise match ParallelFor(n, fn).
  void ParallelFor(int n, const std::function<void(int)>& fn,
                   const std::function<double(int)>& cost);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace trinity

#endif  // TRINITY_COMMON_THREADPOOL_H_
