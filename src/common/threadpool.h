#ifndef TRINITY_COMMON_THREADPOOL_H_
#define TRINITY_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trinity {

/// Fixed-size worker pool. Trinity slaves run their message handlers and BSP
/// partition jobs on a pool like this; WaitIdle() gives the bulk-synchronous
/// barrier between supersteps.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion —
  /// the call itself is the barrier. The range is split into at most
  /// num_threads() contiguous chunks (one task each) so a worker touches a
  /// run of adjacent indices instead of interleaving with its neighbors;
  /// n <= 1 (and a single-thread pool) runs inline on the calling thread.
  /// fn must not call ParallelFor on the same pool (a worker would block
  /// waiting for tasks that only it could run).
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace trinity

#endif  // TRINITY_COMMON_THREADPOOL_H_
