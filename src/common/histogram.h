#ifndef TRINITY_COMMON_HISTOGRAM_H_
#define TRINITY_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace trinity {

/// Latency/throughput statistics accumulator used by the benchmark harness.
/// Stores raw samples (experiments here are small enough) and reports
/// min/mean/percentiles.
class Histogram {
 public:
  Histogram() = default;

  void Add(double value) { samples_.push_back(value); }
  void Clear() { samples_.clear(); }

  /// Appends every sample of `other` — how per-shard histograms filled on
  /// worker threads fold into one report after a parallel-for barrier.
  void Merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  double Min() const;
  double Max() const;
  double Mean() const;
  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// One-line summary, e.g. "n=100 mean=1.23 p50=1.10 p99=3.40".
  std::string ToString() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void Sort() const;
};

/// Wall-clock stopwatch measuring in microseconds.
class Stopwatch {
 public:
  Stopwatch();
  /// Restarts the watch.
  void Reset();
  /// Microseconds since construction or last Reset().
  double ElapsedMicros() const;
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  std::int64_t start_ns_;
};

}  // namespace trinity

#endif  // TRINITY_COMMON_HISTOGRAM_H_
