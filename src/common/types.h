#ifndef TRINITY_COMMON_TYPES_H_
#define TRINITY_COMMON_TYPES_H_

#include <cstdint>

namespace trinity {

/// 64-bit globally unique cell identifier. Keys in the memory cloud's
/// key-value store are CellIds (paper §3: "keys are 64-bit globally unique
/// identifiers, and values are blobs of arbitrary length").
using CellId = std::uint64_t;

/// Identifier of a machine (slave or proxy) in the Trinity cluster.
using MachineId = std::int32_t;

/// Index of a memory trunk inside the global memory cloud (0 .. 2^p - 1).
using TrunkId = std::int32_t;

/// Sentinel for "no machine".
inline constexpr MachineId kInvalidMachine = -1;

/// Sentinel cell id that is never allocated by the graph layer.
inline constexpr CellId kInvalidCell = ~static_cast<CellId>(0);

}  // namespace trinity

#endif  // TRINITY_COMMON_TYPES_H_
