#include "common/status.h"

namespace trinity {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kOutOfMemory:
      return "OutOfMemory";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

const char* SubcodeName(Status::Subcode subcode) {
  switch (subcode) {
    case Status::Subcode::kNone:
      return "";
    case Status::Subcode::kGuardFailed:
      return "guard-failed";
    case Status::Subcode::kTxnConflict:
      return "txn-conflict";
    case Status::Subcode::kFenced:
      return "fenced";
  }
  return "";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  const char* sub = SubcodeName(subcode_);
  if (sub[0] != '\0') {
    result += "[";
    result += sub;
    result += "]";
  }
  if (!msg_.empty()) {
    result += ": ";
    result += msg_;
  }
  return result;
}

}  // namespace trinity
