#include "common/status.h"

namespace trinity {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kOutOfMemory:
      return "OutOfMemory";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!msg_.empty()) {
    result += ": ";
    result += msg_;
  }
  return result;
}

}  // namespace trinity
