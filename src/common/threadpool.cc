#include "common/threadpool.h"

#include <algorithm>
#include <atomic>

namespace trinity {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int shards = std::min(n, num_threads());
  std::vector<Shard> plan;
  plan.reserve(shards);
  // Contiguous chunks, one task per shard: shard s covers
  // [s*chunk + min(s,rem), ...) so sizes differ by at most one.
  const int chunk = n / shards;
  const int rem = n % shards;
  for (int s = 0; s < shards; ++s) {
    const int begin = s * chunk + std::min(s, rem);
    plan.push_back({begin, begin + chunk + (s < rem ? 1 : 0)});
  }
  ParallelForShards(plan, [&fn](int, int begin, int end) {
    for (int i = begin; i < end; ++i) fn(i);
  });
}

std::vector<ThreadPool::Shard> ThreadPool::SplitWeighted(
    int n, const std::function<double(int)>& cost, int max_shards) {
  std::vector<Shard> plan;
  if (n <= 0) return plan;
  if (max_shards < 1) max_shards = 1;
  double total = 0.0;
  std::vector<double> item_cost(n);
  for (int i = 0; i < n; ++i) {
    item_cost[i] = std::max(0.0, cost(i));
    total += item_cost[i];
  }
  if (total <= 0.0) {
    // Degenerate costs: equal-count chunks.
    const int shards = std::min(n, max_shards);
    const int chunk = n / shards;
    const int rem = n % shards;
    for (int s = 0; s < shards; ++s) {
      const int begin = s * chunk + std::min(s, rem);
      plan.push_back({begin, begin + chunk + (s < rem ? 1 : 0)});
    }
    return plan;
  }
  // Walk the prefix sum, cutting a shard each time the running cost crosses
  // the next multiple of total/max_shards. Every shard therefore carries at
  // most ideal + one item of cost, and a single huge item gets a shard of
  // its own instead of dragging its neighbors along.
  const double ideal = total / max_shards;
  double acc = 0.0;
  int begin = 0;
  for (int i = 0; i < n; ++i) {
    acc += item_cost[i];
    const int cuts = static_cast<int>(plan.size()) + 1;
    if (acc >= ideal * cuts && i + 1 < n &&
        static_cast<int>(plan.size()) + 1 < max_shards) {
      plan.push_back({begin, i + 1});
      begin = i + 1;
    }
  }
  plan.push_back({begin, n});
  return plan;
}

void ThreadPool::ParallelForShards(
    const std::vector<Shard>& shards,
    const std::function<void(int, int, int)>& fn) {
  if (shards.empty()) return;
  if (shards.size() == 1 || num_threads() <= 1) {
    for (std::size_t s = 0; s < shards.size(); ++s) {
      fn(static_cast<int>(s), shards[s].begin, shards[s].end);
    }
    return;
  }
  // All completion state lives on this stack frame, so the count must only
  // be touched under done_mu: the waiter can then observe completion only
  // after the finishing worker's last access, making it safe to return and
  // pop the frame.
  std::mutex done_mu;
  std::condition_variable done_cv;
  const int want = static_cast<int>(shards.size());
  int done = 0;
  for (int s = 0; s < want; ++s) {
    const int begin = shards[s].begin;
    const int end = shards[s].end;
    Submit([&, s, begin, end] {
      fn(s, begin, end);
      std::lock_guard<std::mutex> lock(done_mu);
      if (++done == want) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == want; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn,
                             const std::function<double(int)>& cost) {
  if (n <= 0) return;
  if (num_threads() <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::vector<Shard> plan = SplitWeighted(n, cost, num_threads() * 4);
  ParallelForShards(plan, [&fn](int, int begin, int end) {
    for (int i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace trinity
