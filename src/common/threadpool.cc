#include "common/threadpool.h"

#include <algorithm>
#include <atomic>

namespace trinity {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int shards = std::min(n, num_threads());
  if (shards <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // Contiguous chunks, one task per shard: shard s covers
  // [s*chunk + min(s,rem), ...) so sizes differ by at most one.
  const int chunk = n / shards;
  const int rem = n % shards;
  // All completion state lives on this stack frame, so the count must only
  // be touched under done_mu: the waiter can then observe completion only
  // after the finishing worker's last access, making it safe to return and
  // pop the frame.
  std::mutex done_mu;
  std::condition_variable done_cv;
  int done = 0;
  for (int s = 0; s < shards; ++s) {
    const int begin = s * chunk + std::min(s, rem);
    const int end = begin + chunk + (s < rem ? 1 : 0);
    Submit([&, begin, end] {
      for (int i = begin; i < end; ++i) fn(i);
      std::lock_guard<std::mutex> lock(done_mu);
      if (++done == shards) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == shards; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace trinity
