#include "common/histogram.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace trinity {

void Histogram::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  Sort();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  Sort();
  return samples_.back();
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  Sort();
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                count(), Mean(), Percentile(50), Percentile(95),
                Percentile(99), Max());
  return buf;
}

Stopwatch::Stopwatch() { Reset(); }

void Stopwatch::Reset() {
  start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

double Stopwatch::ElapsedMicros() const {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now_ns - start_ns_) / 1000.0;
}

}  // namespace trinity
