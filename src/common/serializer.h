#ifndef TRINITY_COMMON_SERIALIZER_H_
#define TRINITY_COMMON_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace trinity {

/// Appends fixed-width little-endian values and length-prefixed byte strings
/// to a growable buffer. Cells, messages and TFS blocks are all laid out with
/// this writer so the format matches what BinaryReader expects.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(std::uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(std::uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(std::uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(std::int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(std::int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Writes a 32-bit length prefix followed by the bytes.
  void PutBytes(const Slice& s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  void PutString(const std::string& s) { PutBytes(Slice(s)); }

  /// Writes raw bytes with no prefix (caller controls framing).
  void PutRaw(const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  std::string buf_;
};

/// Reads values written by BinaryWriter. All getters return false (and leave
/// the output untouched) on underflow rather than crashing, so corrupted
/// blobs surface as Status::Corruption at the call site.
class BinaryReader {
 public:
  explicit BinaryReader(Slice data) : data_(data), pos_(0) {}

  bool GetU8(std::uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU16(std::uint16_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU32(std::uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(std::uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetI32(std::int32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetI64(std::int64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetDouble(double* v) { return GetRaw(v, sizeof(*v)); }

  /// Reads a 32-bit length prefix and returns a view of the following bytes.
  /// The view aliases the underlying buffer; no copy is made.
  bool GetBytes(Slice* out) {
    std::uint32_t n = 0;
    if (!GetU32(&n)) return false;
    if (pos_ + n > data_.size()) return false;
    *out = Slice(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool GetString(std::string* out) {
    Slice s;
    if (!GetBytes(&s)) return false;
    out->assign(s.data(), s.size());
    return true;
  }

  bool GetRaw(void* out, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Slice data_;
  std::size_t pos_;
};

}  // namespace trinity

#endif  // TRINITY_COMMON_SERIALIZER_H_
