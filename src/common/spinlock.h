#ifndef TRINITY_COMMON_SPINLOCK_H_
#define TRINITY_COMMON_SPINLOCK_H_

#include <atomic>
#include <thread>

namespace trinity {

/// Tiny test-and-test-and-set spin lock. The memory cloud associates one with
/// every key-value pair (paper §3): it provides both concurrency control and
/// physical memory pinning — a cell must be locked before any thread reads,
/// writes or relocates it during defragmentation.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    int spins = 0;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > 256) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool TryLock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace trinity

#endif  // TRINITY_COMMON_SPINLOCK_H_
