#ifndef TRINITY_COMMON_RANDOM_H_
#define TRINITY_COMMON_RANDOM_H_

#include <cstdint>

#include "common/hash.h"

namespace trinity {

/// Deterministic xoshiro256**-style PRNG. Benchmarks and graph generators
/// seed it explicitly so experiment runs are reproducible.
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x5eed5eed5eedULL) {
    // SplitMix the seed into four non-zero lanes.
    std::uint64_t s = seed;
    for (auto& lane : state_) {
      s += 0x9e3779b97f4a7c15ULL;
      lane = Mix64(s) | 1;  // never all-zero
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t Uniform(std::uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability prob.
  bool Bernoulli(double prob) { return NextDouble() < prob; }

  /// Approximately power-law distributed integer in [1, max_value] with
  /// exponent gamma (P(k) ~ k^-gamma), via inverse transform sampling.
  std::uint64_t PowerLaw(double gamma, std::uint64_t max_value);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace trinity

#endif  // TRINITY_COMMON_RANDOM_H_
