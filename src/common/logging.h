#ifndef TRINITY_COMMON_LOGGING_H_
#define TRINITY_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace trinity {

/// Log severity. Logging below the global threshold is compiled to a cheap
/// runtime check; kFatal aborts the process.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Returns/sets the global log threshold (default kWarn so tests stay quiet).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {
void LogV(LogLevel level, const char* file, int line, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;
}  // namespace internal_logging

#define TRINITY_LOG(level, ...)                                             \
  do {                                                                      \
    if (static_cast<int>(level) >=                                          \
        static_cast<int>(::trinity::GetLogLevel())) {                       \
      ::trinity::internal_logging::LogV(level, __FILE__, __LINE__,          \
                                        __VA_ARGS__);                       \
    }                                                                       \
  } while (0)

#define TRINITY_DEBUG(...) TRINITY_LOG(::trinity::LogLevel::kDebug, __VA_ARGS__)
#define TRINITY_INFO(...) TRINITY_LOG(::trinity::LogLevel::kInfo, __VA_ARGS__)
#define TRINITY_WARN(...) TRINITY_LOG(::trinity::LogLevel::kWarn, __VA_ARGS__)
#define TRINITY_ERROR(...) TRINITY_LOG(::trinity::LogLevel::kError, __VA_ARGS__)

/// Invariant check that stays on in release builds (storage-layer corruption
/// must never be silent).
#define TRINITY_CHECK(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, msg);                                          \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

}  // namespace trinity

#endif  // TRINITY_COMMON_LOGGING_H_
