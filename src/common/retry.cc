#include "common/retry.h"

#include <cmath>

#include "common/hash.h"

namespace trinity {

double RetryPolicy::BackoffMicros(int retry, std::uint64_t salt) const {
  double backoff = backoff_base_micros;
  for (int i = 1; i < retry; ++i) backoff *= backoff_multiplier;
  if (jitter_fraction > 0.0 && backoff > 0.0) {
    const std::uint64_t lane =
        Mix64(jitter_seed ^ Mix64(salt + 0x9e3779b97f4a7c15ULL *
                                             static_cast<std::uint64_t>(retry)));
    // 53-bit mantissa draw in [0, 1), same construction as common/random.h.
    const double unit = static_cast<double>(lane >> 11) * 0x1.0p-53;
    backoff *= 1.0 + jitter_fraction * (2.0 * unit - 1.0);
  }
  return backoff;
}

Status RetryPolicy::Run(const RunHooks& hooks,
                        const std::function<Status(int)>& attempt) const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("RetryPolicy.max_attempts must be >= 1");
  }
  RetryBudget* budget =
      hooks.ctx != nullptr ? hooks.ctx->retry_budget() : nullptr;
  if (budget != nullptr) budget->OnAttempt();
  if (hooks.ctx != nullptr) {
    Status gate = hooks.ctx->Check();
    if (!gate.ok()) return gate;
  }
  Status last = attempt(0);
  for (int retry = 1; retry < max_attempts; ++retry) {
    if (!last.IsRetryable()) return last;
    if (hooks.keep_trying && !hooks.keep_trying()) return last;
    if (hooks.ctx != nullptr) {
      Status gate = hooks.ctx->Check();
      if (!gate.ok()) return gate;
    }
    const double backoff = BackoffMicros(retry, hooks.salt);
    if (hooks.ctx != nullptr && hooks.ctx->has_deadline() &&
        backoff >= hooks.ctx->remaining_micros()) {
      // The wait alone would blow the deadline; burn the rest of the
      // budget and report instead of sleeping through it.
      hooks.ctx->Consume(hooks.ctx->remaining_micros());
      return Status::DeadlineExceeded(
          "deadline exhausted before retry " + std::to_string(retry) +
          "; last error: " + last.ToString());
    }
    if (budget != nullptr && !budget->TryAcquire()) {
      return Status::ResourceExhausted(
          "retry budget exhausted; last error: " + last.ToString());
    }
    if (hooks.charge) hooks.charge(backoff);
    if (hooks.ctx != nullptr) hooks.ctx->Consume(backoff);
    last = attempt(retry);
  }
  return last;
}

}  // namespace trinity
