#ifndef TRINITY_STORAGE_CELL_CODEC_H_
#define TRINITY_STORAGE_CELL_CODEC_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace trinity::storage {

/// Per-cell storage format tag. Kept in two spare bits of the trunk entry
/// header (and as one byte in trunk images and cold-tier pages), so legacy
/// raw payloads decode unchanged — format 0 *is* the legacy layout.
enum class CellFormat : std::uint8_t {
  kRaw = 0,       ///< Payload stored verbatim.
  kAdjDelta = 1,  ///< Node cell with delta-varint adjacency (CellCodec).
};

/// Adaptive compressed encoding for adjacency-list cells, after Trident's
/// delta-varint neighbor lists (PAPERS.md "Adaptive Low-level Storage of
/// Very Large Knowledge Graphs").
///
/// The codec understands the graph layer's node cell layout
///
///   raw := [u32 in_count][u32 data_len][data][in ids (8B)...][out ids (8B)]
///
/// and re-encodes the two id arrays as gap streams when both are sorted
/// (non-decreasing; duplicates = parallel edges are fine):
///
///   enc := varint(raw_size) varint(in_count) varint(data_len) data
///          ids(in_count) varint(out_count) ids(out_count)
///   ids(n) := varint(first_id) varint(id[i] - id[i-1])*(n-1)   // n > 0
///
/// Encoding is *adaptive*: EncodeAdjacency returns false — store raw — for
/// payloads that do not parse as a node cell, carry unsorted lists, or
/// would not shrink. Decoding reproduces the raw payload bit-identically,
/// validates every bound, and never reads outside the input slice, so a
/// corrupt payload surfaces as Status::Corruption rather than UB (fuzzed in
/// tests/fuzz_test.cc).
class CellCodec {
 public:
  /// Cells above this logical size are never produced by the trunk (the
  /// format tag borrows the top bits of the entry header's capacity field).
  static constexpr std::uint64_t kMaxCellBytes = (1u << 30) - 1;

  /// Attempts the delta-varint encoding. Returns true and fills *out only
  /// when `raw` parses as a node cell, both id lists are sorted
  /// (non-decreasing), and the encoding is strictly smaller than `raw`.
  static bool EncodeAdjacency(Slice raw, std::string* out);

  /// Decodes an EncodeAdjacency payload back to the exact raw bytes.
  /// Returns Corruption on any malformed input.
  static Status DecodeAdjacency(Slice encoded, std::string* out);

  /// Reads just the leading raw_size varint (the decoded payload length)
  /// without materializing the cell.
  static Status DecodedSize(Slice encoded, std::uint64_t* size);

  /// Logical (decoded) size of a stored payload under `format`.
  static std::uint64_t LogicalSize(CellFormat format, Slice stored) {
    if (format == CellFormat::kRaw) return stored.size();
    std::uint64_t size = 0;
    return DecodedSize(stored, &size).ok() ? size : stored.size();
  }

  // LEB128 varint helpers (exposed for tests and the cold-tier pager).
  static void PutVarint(std::string* dst, std::uint64_t v);
  /// Advances *p past the varint; false on truncation or overlong (>10B)
  /// encodings. *p is only advanced on success.
  static bool GetVarint(const char** p, const char* end, std::uint64_t* v);
};

}  // namespace trinity::storage

#endif  // TRINITY_STORAGE_CELL_CODEC_H_
