#ifndef TRINITY_STORAGE_COLD_TIER_H_
#define TRINITY_STORAGE_COLD_TIER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "tfs/tfs.h"

namespace trinity::storage {

/// TFS-backed cold tier for one memory trunk: cold cells evicted by the
/// trunk's clock sweep land here as immutable multi-cell *pages*, written
/// and read with purely sequential I/O (GraphD-style, see PAPERS.md
/// "Efficient Processing of Very Large Graphs in a Small Cluster").
///
/// Pages carry cells in their *stored* form — delta-varint compressed when
/// the codec applied — plus each cell's format tag and logical size, so
/// fault-in re-admits bytes verbatim and GetCellSize answers without I/O.
///
/// Protocol invariants the trunk relies on:
///   * Spill() makes a page durable BEFORE the trunk drops the resident
///     copies — a failed page write leaves every victim resident, so a
///     crash mid-eviction can never lose a cell.
///   * Fault-in copies one cell out of its page but leaves the page intact;
///     Drop() releases the mapping, and a page is deleted only when its
///     last cell is dropped (dead space in partially-drained pages is the
///     price of sequential rewrites never happening).
///
/// Thread safety: all methods lock the internal mutex. The owning trunk
/// calls the mutating methods (Spill/ReadCell/Drop) only from its exclusive
/// side; Contains/Lookup are called under the shared read lock and take the
/// `spilled_cells_ == 0` fast path without the mutex, so the resident read
/// hot path stays lock-free with an empty cold tier.
class ColdTier {
 public:
  struct Options {
    tfs::Tfs* tfs = nullptr;  ///< Backing store (required).
    std::string prefix;       ///< File-name prefix for this tier's pages.
    std::uint64_t page_payload_bytes = 256 << 10;  ///< Target page size.
  };

  /// Page-table entry for one spilled cell.
  struct CellMeta {
    std::uint64_t page = 0;        ///< Page sequence number.
    std::uint32_t stored_size = 0; ///< Bytes as stored (maybe compressed).
    std::uint32_t raw_size = 0;    ///< Logical (decoded) payload bytes.
    std::uint8_t format = 0;       ///< CellFormat of the stored bytes.
  };

  /// One eviction victim handed to Spill().
  struct SpillEntry {
    CellId id = 0;
    std::uint8_t format = 0;
    std::uint32_t raw_size = 0;
    Slice stored;  ///< Must stay valid for the duration of the call.
  };

  struct Stats {
    std::uint64_t pages_written = 0;
    std::uint64_t pages_read = 0;
    std::uint64_t pages_deleted = 0;
    std::uint64_t cells_spilled = 0;  ///< Cumulative.
    std::uint64_t cells_faulted = 0;  ///< Cumulative.
    std::uint64_t bytes_spilled = 0;  ///< Cumulative stored bytes.
    std::uint64_t bytes_faulted = 0;  ///< Cumulative stored bytes.
  };

  explicit ColdTier(Options options) : options_(std::move(options)) {}
  ~ColdTier() { Purge(); }
  ColdTier(const ColdTier&) = delete;
  ColdTier& operator=(const ColdTier&) = delete;

  /// Writes `entries` to one or more fresh pages (chunked at
  /// page_payload_bytes) and installs their page-table mappings. All-or-
  /// nothing: on any write error no mapping is installed and the caller
  /// must keep every victim resident.
  Status Spill(const std::vector<SpillEntry>& entries);

  bool Contains(CellId id) const;
  bool Lookup(CellId id, CellMeta* meta) const;

  /// Reads the page holding `id` (one sequential TFS read) and copies the
  /// cell's stored bytes out. The mapping stays until Drop().
  Status ReadCell(CellId id, std::string* stored, CellMeta* meta);

  /// Releases the mapping after re-admission, overwrite, or removal.
  /// Deletes the backing page once its last cell is dropped.
  void Drop(CellId id);

  /// Sequentially reads every page once and invokes fn for each still-
  /// mapped cell — the trunk serialization path, so snapshots and
  /// replication images include spilled cells.
  Status ForEachCell(
      const std::function<void(CellId, const CellMeta&, Slice)>& fn);

  /// Ids of all spilled cells (unspecified order).
  std::vector<CellId> CellIds() const;

  /// Deletes every page and mapping (trunk teardown).
  void Purge();

  /// Lock-free counters for the trunk's read-path fast checks.
  std::uint64_t spilled_cells() const {
    return spilled_cells_.load(std::memory_order_relaxed);
  }
  std::uint64_t spilled_bytes() const {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }

  Stats stats() const;

 private:
  struct PageInfo {
    std::uint32_t live_cells = 0;
  };

  std::string PagePath(std::uint64_t page) const {
    return options_.prefix + "/page_" + std::to_string(page);
  }
  Status WritePageLocked(const SpillEntry* entries, std::size_t count);
  /// Parses a page blob; fn(id, format, raw_size, stored). Corruption on
  /// malformed pages.
  static Status ParsePage(
      Slice page,
      const std::function<void(CellId, std::uint8_t, std::uint32_t, Slice)>&
          fn);

  const Options options_;
  mutable std::mutex mu_;
  std::map<CellId, CellMeta> table_;
  std::map<std::uint64_t, PageInfo> pages_;
  std::uint64_t next_page_ = 1;
  Stats stats_;
  std::atomic<std::uint64_t> spilled_cells_{0};
  std::atomic<std::uint64_t> spilled_bytes_{0};
};

}  // namespace trinity::storage

#endif  // TRINITY_STORAGE_COLD_TIER_H_
