#include "storage/memory_storage.h"

#include <string>

#include "common/logging.h"

namespace trinity::storage {

Status MemoryStorage::AttachTrunk(TrunkId trunk_id) {
  std::unique_ptr<MemoryTrunk> trunk;
  Status s = MemoryTrunk::Create(options_.trunk, &trunk);
  if (!s.ok()) return s;
  return AttachTrunk(trunk_id, std::move(trunk));
}

Status MemoryStorage::AttachTrunk(TrunkId trunk_id,
                                  std::unique_ptr<MemoryTrunk> trunk) {
  std::lock_guard<std::mutex> lock(mu_);
  if (trunks_.count(trunk_id) != 0) {
    return Status::AlreadyExists("trunk already hosted");
  }
  trunks_.emplace(trunk_id, std::move(trunk));
  return Status::OK();
}

Status MemoryStorage::DetachTrunk(TrunkId trunk_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (trunks_.erase(trunk_id) == 0) return Status::NotFound("no such trunk");
  return Status::OK();
}

MemoryTrunk* MemoryStorage::trunk(TrunkId trunk_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = trunks_.find(trunk_id);
  return it == trunks_.end() ? nullptr : it->second.get();
}

std::vector<TrunkId> MemoryStorage::trunk_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TrunkId> ids;
  ids.reserve(trunks_.size());
  for (const auto& [id, trunk] : trunks_) {
    (void)trunk;
    ids.push_back(id);
  }
  return ids;
}

Status MemoryStorage::AttachReplicaTrunk(TrunkId trunk_id) {
  std::unique_ptr<MemoryTrunk> trunk;
  Status s = MemoryTrunk::Create(options_.trunk, &trunk);
  if (!s.ok()) return s;
  return AttachReplicaTrunk(trunk_id, std::move(trunk));
}

Status MemoryStorage::AttachReplicaTrunk(TrunkId trunk_id,
                                         std::unique_ptr<MemoryTrunk> trunk) {
  std::lock_guard<std::mutex> lock(mu_);
  if (trunks_.count(trunk_id) != 0) {
    return Status::AlreadyExists("machine is primary for this trunk");
  }
  replica_trunks_[trunk_id] = std::move(trunk);
  return Status::OK();
}

MemoryTrunk* MemoryStorage::replica_trunk(TrunkId trunk_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = replica_trunks_.find(trunk_id);
  return it == replica_trunks_.end() ? nullptr : it->second.get();
}

Status MemoryStorage::DetachReplicaTrunk(TrunkId trunk_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (replica_trunks_.erase(trunk_id) == 0) {
    return Status::NotFound("no such replica trunk");
  }
  return Status::OK();
}

Status MemoryStorage::PromoteReplicaTrunk(TrunkId trunk_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = replica_trunks_.find(trunk_id);
  if (it == replica_trunks_.end()) {
    return Status::NotFound("no replica to promote");
  }
  if (trunks_.count(trunk_id) != 0) {
    return Status::AlreadyExists("already primary for this trunk");
  }
  trunks_.emplace(trunk_id, std::move(it->second));
  replica_trunks_.erase(it);
  return Status::OK();
}

std::vector<TrunkId> MemoryStorage::replica_trunk_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TrunkId> ids;
  ids.reserve(replica_trunks_.size());
  for (const auto& [id, trunk] : replica_trunks_) {
    (void)trunk;
    ids.push_back(id);
  }
  return ids;
}

std::uint64_t MemoryStorage::ReplicaFootprintBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, trunk] : replica_trunks_) {
    (void)id;
    total += trunk->stats().committed_bytes;
  }
  return total;
}

std::uint64_t MemoryStorage::MemoryFootprintBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, trunk] : trunks_) {
    (void)id;
    total += trunk->stats().committed_bytes;
  }
  return total;
}

std::uint64_t MemoryStorage::TotalCellCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, trunk] : trunks_) {
    (void)id;
    total += trunk->cell_count();
  }
  return total;
}

MemoryTrunk::Stats MemoryStorage::AggregateTrunkStats() const {
  std::vector<MemoryTrunk*> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, trunk] : trunks_) {
      (void)id;
      snapshot.push_back(trunk.get());
    }
  }
  MemoryTrunk::Stats total;
  for (MemoryTrunk* trunk : snapshot) {
    const MemoryTrunk::Stats s = trunk->stats();
    total.live_cells += s.live_cells;
    total.live_bytes += s.live_bytes;
    total.reserved_slack += s.reserved_slack;
    total.dead_bytes += s.dead_bytes;
    total.used_bytes += s.used_bytes;
    total.resident_bytes += s.resident_bytes;
    total.committed_bytes += s.committed_bytes;
    total.capacity += s.capacity;
    total.defrag_passes += s.defrag_passes;
    total.cells_moved += s.cells_moved;
    total.expansions_in_place += s.expansions_in_place;
    total.expansions_relocated += s.expansions_relocated;
    total.compressed_cells += s.compressed_cells;
    total.compressed_bytes += s.compressed_bytes;
    total.spilled_cells += s.spilled_cells;
    total.spilled_bytes += s.spilled_bytes;
    total.cells_evicted += s.cells_evicted;
    total.cells_faulted += s.cells_faulted;
    total.cold_bytes_written += s.cold_bytes_written;
    total.cold_bytes_read += s.cold_bytes_read;
    total.shared_reads += s.shared_reads;
    total.read_lock_contended += s.read_lock_contended;
    total.write_lock_contended += s.write_lock_contended;
    total.cell_lock_contended += s.cell_lock_contended;
  }
  return total;
}

Status MemoryStorage::SaveToTfs(tfs::Tfs* tfs,
                                const std::string& prefix) const {
  std::vector<std::pair<TrunkId, MemoryTrunk*>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, trunk] : trunks_) {
      snapshot.emplace_back(id, trunk.get());
    }
  }
  for (const auto& [id, trunk] : snapshot) {
    std::string image;
    Status s = trunk->Serialize(&image);
    if (!s.ok()) return s;
    s = tfs->WriteFile(prefix + "/trunk_" + std::to_string(id), Slice(image));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status MemoryStorage::LoadTrunkFromTfs(tfs::Tfs* tfs,
                                       const std::string& prefix,
                                       TrunkId trunk_id,
                                       const MemoryTrunk::Options& options,
                                       std::unique_ptr<MemoryTrunk>* out) {
  std::string image;
  Status s =
      tfs->ReadFile(prefix + "/trunk_" + std::to_string(trunk_id), &image);
  if (!s.ok()) return s;
  return MemoryTrunk::Deserialize(Slice(image), options, out);
}

void MemoryStorage::StartDefragDaemon(std::chrono::milliseconds interval) {
  std::lock_guard<std::mutex> lock(daemon_mu_);
  if (daemon_running_) return;
  daemon_stop_ = false;
  daemon_running_ = true;
  defrag_thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(daemon_mu_);
    while (!daemon_stop_) {
      daemon_cv_.wait_for(lock, interval,
                          [this] { return daemon_stop_; });
      if (daemon_stop_) break;
      lock.unlock();
      DefragSweep();
      lock.lock();
    }
  });
}

void MemoryStorage::StopDefragDaemon() {
  {
    std::lock_guard<std::mutex> lock(daemon_mu_);
    if (!daemon_running_) return;
    daemon_stop_ = true;
  }
  daemon_cv_.notify_all();
  defrag_thread_.join();
  std::lock_guard<std::mutex> lock(daemon_mu_);
  daemon_running_ = false;
}

std::uint64_t MemoryStorage::DefragSweep() {
  std::vector<MemoryTrunk*> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, trunk] : trunks_) {
      (void)id;
      snapshot.push_back(trunk.get());
    }
  }
  std::uint64_t reclaimed = 0;
  for (MemoryTrunk* trunk : snapshot) {
    const MemoryTrunk::Stats stats = trunk->stats();
    if (stats.used_bytes == 0) continue;
    const double wasted = static_cast<double>(stats.dead_bytes +
                                              stats.reserved_slack);
    // A trunk over its memory budget also defragments: the pass doubles as
    // the cold-tier eviction sweep (see MemoryTrunk::DefragmentLocked).
    const bool over_budget = options_.trunk.memory_budget > 0 &&
                             stats.used_bytes > options_.trunk.memory_budget;
    if (over_budget ||
        wasted / static_cast<double>(stats.used_bytes) >=
            options_.defrag_threshold) {
      reclaimed += trunk->Defragment();
    }
  }
  return reclaimed;
}

}  // namespace trinity::storage
