#include "storage/cell_codec.h"

#include <cstring>

namespace trinity::storage {

namespace {

/// Raw node-cell geometry shared by encode and the sorted check.
struct NodeShape {
  std::uint32_t in_count = 0;
  std::uint32_t data_len = 0;
  std::size_t in_begin = 0;   ///< Byte offset of the in-id array.
  std::size_t out_begin = 0;  ///< Byte offset of the out-id array.
  std::size_t out_count = 0;
};

bool ParseNodeShape(Slice raw, NodeShape* s) {
  if (raw.size() < 8 || raw.size() > CellCodec::kMaxCellBytes) return false;
  std::memcpy(&s->in_count, raw.data(), 4);
  std::memcpy(&s->data_len, raw.data() + 4, 4);
  s->in_begin = 8 + static_cast<std::size_t>(s->data_len);
  if (s->in_begin > raw.size()) return false;
  const std::size_t in_bytes = static_cast<std::size_t>(s->in_count) * 8;
  s->out_begin = s->in_begin + in_bytes;
  if (s->out_begin < s->in_begin || s->out_begin > raw.size()) return false;
  const std::size_t tail = raw.size() - s->out_begin;
  if (tail % 8 != 0) return false;
  s->out_count = tail / 8;
  return true;
}

std::uint64_t IdAt(Slice raw, std::size_t begin, std::size_t i) {
  std::uint64_t id = 0;
  std::memcpy(&id, raw.data() + begin + i * 8, 8);
  return id;
}

/// Appends the gap stream for a sorted id array; false if unsorted.
bool PutIdList(Slice raw, std::size_t begin, std::size_t count,
               std::string* out) {
  if (count == 0) return true;
  std::uint64_t prev = IdAt(raw, begin, 0);
  CellCodec::PutVarint(out, prev);
  for (std::size_t i = 1; i < count; ++i) {
    const std::uint64_t id = IdAt(raw, begin, i);
    if (id < prev) return false;  // Unsorted input: store raw instead.
    CellCodec::PutVarint(out, id - prev);
    prev = id;
  }
  return true;
}

}  // namespace

void CellCodec::PutVarint(std::string* dst, std::uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

bool CellCodec::GetVarint(const char** p, const char* end, std::uint64_t* v) {
  std::uint64_t result = 0;
  int shift = 0;
  const char* cur = *p;
  while (cur < end && shift < 64) {
    const std::uint8_t byte = static_cast<std::uint8_t>(*cur++);
    if (shift == 63 && (byte & 0x7e) != 0) return false;  // u64 overflow.
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      *p = cur;
      return true;
    }
    shift += 7;
  }
  return false;  // Truncated or overlong.
}

bool CellCodec::EncodeAdjacency(Slice raw, std::string* out) {
  NodeShape shape;
  if (!ParseNodeShape(raw, &shape)) return false;
  std::string enc;
  enc.reserve(raw.size() / 2);
  PutVarint(&enc, raw.size());
  PutVarint(&enc, shape.in_count);
  PutVarint(&enc, shape.data_len);
  enc.append(raw.data() + 8, shape.data_len);
  if (!PutIdList(raw, shape.in_begin, shape.in_count, &enc)) return false;
  PutVarint(&enc, shape.out_count);
  if (!PutIdList(raw, shape.out_begin, shape.out_count, &enc)) return false;
  if (enc.size() >= raw.size()) return false;  // Not worth the tag.
  *out = std::move(enc);
  return true;
}

Status CellCodec::DecodedSize(Slice encoded, std::uint64_t* size) {
  const char* p = encoded.data();
  const char* end = p + encoded.size();
  std::uint64_t raw_size = 0;
  if (!GetVarint(&p, end, &raw_size) || raw_size > kMaxCellBytes) {
    return Status::Corruption("cell codec: bad raw size");
  }
  *size = raw_size;
  return Status::OK();
}

Status CellCodec::DecodeAdjacency(Slice encoded, std::string* out) {
  const char* p = encoded.data();
  const char* end = p + encoded.size();
  std::uint64_t raw_size = 0, in_count = 0, data_len = 0;
  if (!GetVarint(&p, end, &raw_size) || raw_size > kMaxCellBytes ||
      !GetVarint(&p, end, &in_count) || !GetVarint(&p, end, &data_len)) {
    return Status::Corruption("cell codec: bad header");
  }
  // Every id costs at least one encoded byte and data bytes are verbatim,
  // so wildly inflated counts are rejected before any allocation.
  const std::size_t remaining = static_cast<std::size_t>(end - p);
  if (data_len > remaining || in_count > remaining) {
    return Status::Corruption("cell codec: counts exceed payload");
  }
  const char* data = p;
  p += data_len;

  std::string raw;
  // 8-byte blob header + data now; ids appended below. raw_size is
  // cross-checked at the end, so a lying header cannot stick.
  raw.reserve(static_cast<std::size_t>(raw_size) <= encoded.size() * 8 + 16
                  ? static_cast<std::size_t>(raw_size)
                  : 0);
  const std::uint32_t in_count32 = static_cast<std::uint32_t>(in_count);
  const std::uint32_t data_len32 = static_cast<std::uint32_t>(data_len);
  if (in_count32 != in_count || data_len32 != data_len) {
    return Status::Corruption("cell codec: count overflow");
  }
  raw.append(reinterpret_cast<const char*>(&in_count32), 4);
  raw.append(reinterpret_cast<const char*>(&data_len32), 4);
  raw.append(data, data_len);

  auto append_ids = [&](std::uint64_t count) -> bool {
    std::uint64_t id = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t delta = 0;
      if (!GetVarint(&p, end, &delta)) return false;
      id = (i == 0) ? delta : id + delta;
      raw.append(reinterpret_cast<const char*>(&id), 8);
    }
    return true;
  };
  if (!append_ids(in_count)) {
    return Status::Corruption("cell codec: truncated in-list");
  }
  std::uint64_t out_count = 0;
  if (!GetVarint(&p, end, &out_count) ||
      out_count > static_cast<std::size_t>(end - p) + 1) {
    return Status::Corruption("cell codec: bad out count");
  }
  if (!append_ids(out_count)) {
    return Status::Corruption("cell codec: truncated out-list");
  }
  if (p != end || raw.size() != raw_size) {
    return Status::Corruption("cell codec: size mismatch");
  }
  *out = std::move(raw);
  return Status::OK();
}

}  // namespace trinity::storage
