#include "storage/memory_trunk.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "common/serializer.h"

namespace trinity::storage {

MemoryTrunk::MemoryTrunk(const Options& options) : options_(options) {}

Status MemoryTrunk::Create(const Options& options,
                           std::unique_ptr<MemoryTrunk>* out) {
  if (options.capacity < (1u << 12)) {
    return Status::InvalidArgument("trunk capacity too small");
  }
  std::unique_ptr<MemoryTrunk> trunk(new MemoryTrunk(options));
  Status s = trunk->Init();
  if (!s.ok()) return s;
  *out = std::move(trunk);
  return Status::OK();
}

Status MemoryTrunk::Init() {
  page_size_ = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  capacity_ = (options_.capacity + page_size_ - 1) / page_size_ * page_size_;
  // Reserve the address range without committing physical memory — the
  // paper's "reserve a 2GB virtual memory address space" step.
  void* mem = ::mmap(nullptr, capacity_, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (mem == MAP_FAILED) {
    return Status::OutOfMemory("cannot reserve trunk address space");
  }
  base_ = static_cast<char*>(mem);
  committed_pages_.assign(capacity_ / page_size_, false);
  locks_ = std::make_unique<SpinLock[]>(kLockStripes);
  return Status::OK();
}

MemoryTrunk::~MemoryTrunk() {
  if (base_ != nullptr) ::munmap(base_, capacity_);
}

SpinLock& MemoryTrunk::LockFor(CellId id) const {
  return locks_[InTrunkHash(id) % kLockStripes];
}

std::shared_lock<std::shared_mutex> MemoryTrunk::ReadLock() const {
  shared_reads_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    read_lock_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

std::unique_lock<std::shared_mutex> MemoryTrunk::WriteLock() const {
  std::unique_lock<std::shared_mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    write_lock_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

SpinLock* MemoryTrunk::AcquireCellLock(CellId id) const {
  SpinLock& lock = LockFor(id);
#ifndef NDEBUG
  TRINITY_CHECK(!internal::StripeHeldByThisThread(&lock),
                "re-entrant striped cell-lock acquisition: this thread "
                "already holds an accessor or cell lock on this stripe and "
                "would self-deadlock (see docs/concurrent_reads.md)");
#endif
  if (!lock.TryLock()) {
    cell_lock_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.Lock();
  }
#ifndef NDEBUG
  internal::NoteStripeAcquired(&lock);
#endif
  return &lock;
}

void MemoryTrunk::ReleaseCellLock(SpinLock* lock) const {
#ifndef NDEBUG
  internal::NoteStripeReleased(lock);
#endif
  lock->Unlock();
}

Status MemoryTrunk::EnsureCommitted(std::uint64_t phys_begin,
                                    std::uint64_t length) {
  if (length == 0) return Status::OK();
  const std::uint64_t first = phys_begin / page_size_;
  const std::uint64_t last = (phys_begin + length - 1) / page_size_;
  for (std::uint64_t page = first; page <= last; ++page) {
    if (committed_pages_[page]) continue;
    if (::mprotect(base_ + page * page_size_, page_size_,
                   PROT_READ | PROT_WRITE) != 0) {
      return Status::OutOfMemory("mprotect commit failed");
    }
    committed_pages_[page] = true;
    ++committed_page_count_;
  }
  return Status::OK();
}

void MemoryTrunk::DecommitDeadPagesLocked() {
  // Compute the physical pages overlapped by the live logical window
  // [tail_, head_) and release everything else back to the OS.
  const std::uint64_t used = head_ - tail_;
  std::vector<bool> live(committed_pages_.size(), false);
  if (used >= capacity_) {
    live.assign(live.size(), true);
  } else if (used > 0) {
    const std::uint64_t lt = tail_ % capacity_;
    const std::uint64_t lh = head_ % capacity_;
    auto mark = [&](std::uint64_t begin, std::uint64_t end) {
      if (begin >= end) return;
      const std::uint64_t first = begin / page_size_;
      const std::uint64_t last = (end - 1) / page_size_;
      for (std::uint64_t p = first; p <= last; ++p) live[p] = true;
    };
    if (lt < lh) {
      mark(lt, lh);
    } else {
      mark(lt, capacity_);
      mark(0, lh);
    }
  }
  for (std::uint64_t page = 0; page < committed_pages_.size(); ++page) {
    if (committed_pages_[page] && !live[page]) {
      char* addr = base_ + page * page_size_;
      ::madvise(addr, page_size_, MADV_DONTNEED);
      ::mprotect(addr, page_size_, PROT_NONE);
      committed_pages_[page] = false;
      --committed_page_count_;
    }
  }
}

Status MemoryTrunk::AllocateLocked(std::uint64_t span,
                                   std::uint64_t* logical) {
  if (span > capacity_) return Status::InvalidArgument("cell too large");
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint64_t phys = head_ % capacity_;
    const std::uint64_t rem = capacity_ - phys;
    const std::uint64_t pad = rem < span ? rem : 0;
    if (head_ - tail_ + pad + span > capacity_) {
      if (attempt == 0 && stats_.dead_bytes > 0 && !in_defrag_) {
        DefragmentLocked();
        continue;
      }
      return Status::OutOfMemory("trunk full");
    }
    if (pad > 0) {
      if (rem >= kHeaderSize) {
        Status s = EnsureCommitted(phys, kHeaderSize);
        if (!s.ok()) return s;
        EntryHeader* hdr = HeaderAt(head_);
        hdr->id = kPadCell;
        hdr->size = 0;
        hdr->capacity = static_cast<std::uint32_t>(rem - kHeaderSize);
      }
      // rem < kHeaderSize leaves an implicit pad the scanner skips.
      head_ += pad;
      stats_.dead_bytes += pad;
    }
    Status s = EnsureCommitted(head_ % capacity_, span);
    if (!s.ok()) return s;
    *logical = head_;
    head_ += span;
    return Status::OK();
  }
  return Status::OutOfMemory("trunk full");
}

Status MemoryTrunk::AppendEntryLocked(CellId id, Slice payload,
                                      std::uint64_t capacity,
                                      std::uint64_t* logical) {
  if (capacity < payload.size()) capacity = payload.size();
  const std::uint64_t span = EntrySpan(capacity);
  Status s = AllocateLocked(span, logical);
  if (!s.ok()) return s;
  EntryHeader* hdr = HeaderAt(*logical);
  hdr->id = id;
  hdr->size = static_cast<std::uint32_t>(payload.size());
  hdr->capacity = static_cast<std::uint32_t>(capacity);
  if (!payload.empty()) {
    std::memcpy(PhysPtr(*logical) + kHeaderSize, payload.data(),
                payload.size());
  }
  return Status::OK();
}

Status MemoryTrunk::AddCell(CellId id, Slice payload) {
  if (id >= kDeadCell) return Status::InvalidArgument("reserved cell id");
  auto lock = WriteLock();
  if (index_.Find(id) != TrunkIndex::kNoOffset) {
    return Status::AlreadyExists("cell exists");
  }
  std::uint64_t logical = 0;
  Status s = AppendEntryLocked(id, payload, payload.size(), &logical);
  if (!s.ok()) return s;
  index_.Upsert(id, logical);
  ++stats_.live_cells;
  stats_.live_bytes += payload.size();
  return Status::OK();
}

Status MemoryTrunk::PutCell(CellId id, Slice payload) {
  if (id >= kDeadCell) return Status::InvalidArgument("reserved cell id");
  auto lock = WriteLock();
  const std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) {
    std::uint64_t logical = 0;
    Status s = AppendEntryLocked(id, payload, payload.size(), &logical);
    if (!s.ok()) return s;
    index_.Upsert(id, logical);
    ++stats_.live_cells;
    stats_.live_bytes += payload.size();
    return Status::OK();
  }
  EntryHeader* hdr = HeaderAt(offset);
  CellLockGuard cell_lock(this, id);
  if (payload.size() <= hdr->capacity) {
    // In-place overwrite; shrink or grow within the existing allocation.
    stats_.live_bytes += payload.size();
    stats_.live_bytes -= hdr->size;
    stats_.reserved_slack += hdr->size;
    stats_.reserved_slack -= payload.size();
    if (!payload.empty()) {
      std::memcpy(PhysPtr(offset) + kHeaderSize, payload.data(),
                  payload.size());
    }
    hdr->size = static_cast<std::uint32_t>(payload.size());
    return Status::OK();
  }
  // Relocate: append the new image first; only then kill the old entry.
  // The allocation may trigger an auto-defrag pass that *moves* the old
  // entry, so its location must be re-resolved through the index afterwards.
  std::uint64_t logical = 0;
  Status s = AppendEntryLocked(id, payload, payload.size(), &logical);
  if (!s.ok()) return s;  // Old entry untouched and still indexed.
  const std::uint64_t old_offset = index_.Find(id);
  EntryHeader* old_hdr = HeaderAt(old_offset);
  const std::uint64_t old_size = old_hdr->size;
  const std::uint64_t old_slack = old_hdr->capacity - old_hdr->size;
  old_hdr->id = kDeadCell;
  stats_.dead_bytes += EntrySpan(old_hdr->capacity);
  index_.Upsert(id, logical);
  stats_.live_bytes += payload.size();
  stats_.live_bytes -= old_size;
  stats_.reserved_slack -= old_slack;
  return Status::OK();
}

Status MemoryTrunk::GetCell(CellId id, std::string* out) const {
  auto lock = ReadLock();
  const std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) return Status::NotFound("no such cell");
  const EntryHeader* hdr = HeaderAt(offset);
  out->assign(PhysPtr(offset) + kHeaderSize, hdr->size);
  return Status::OK();
}

bool MemoryTrunk::Contains(CellId id) const {
  auto lock = ReadLock();
  return index_.Find(id) != TrunkIndex::kNoOffset;
}

Status MemoryTrunk::GetCellSize(CellId id, std::uint64_t* size) const {
  auto lock = ReadLock();
  const std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) return Status::NotFound("no such cell");
  *size = HeaderAt(offset)->size;
  return Status::OK();
}

Status MemoryTrunk::RemoveCell(CellId id) {
  auto lock = WriteLock();
  const std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) return Status::NotFound("no such cell");
  EntryHeader* hdr = HeaderAt(offset);
  CellLockGuard cell_lock(this, id);
  index_.Erase(id);
  --stats_.live_cells;
  stats_.live_bytes -= hdr->size;
  stats_.reserved_slack -= hdr->capacity - hdr->size;
  stats_.dead_bytes += EntrySpan(hdr->capacity);
  hdr->id = kDeadCell;
  return Status::OK();
}

Status MemoryTrunk::AppendToCell(CellId id, Slice suffix) {
  auto lock = WriteLock();
  const std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) return Status::NotFound("no such cell");
  EntryHeader* hdr = HeaderAt(offset);
  CellLockGuard cell_lock(this, id);
  const std::uint64_t new_size = hdr->size + suffix.size();
  if (new_size <= hdr->capacity) {
    // The short-lived reservation absorbs the growth; no relocation.
    if (!suffix.empty()) {
      std::memcpy(PhysPtr(offset) + kHeaderSize + hdr->size, suffix.data(),
                  suffix.size());
    }
    stats_.reserved_slack -= suffix.size();
    stats_.live_bytes += suffix.size();
    hdr->size = static_cast<std::uint32_t>(new_size);
    ++stats_.expansions_in_place;
    return Status::OK();
  }
  // Relocate with a fresh short-lived reservation (§6.1: "if the current
  // key-value pair needs to expand by 16 bytes, we allocate 32 instead").
  const std::uint64_t reserve =
      new_size * static_cast<std::uint64_t>(options_.reservation_pct) / 100;
  const std::uint64_t new_capacity = new_size + reserve;
  std::string image;
  image.reserve(new_size);
  image.assign(PhysPtr(offset) + kHeaderSize, hdr->size);
  image.append(suffix.data(), suffix.size());
  // Append-first, as in PutCell: auto-defrag during allocation may move the
  // old entry, so re-resolve it via the index before killing it.
  std::uint64_t logical = 0;
  Status s = AppendEntryLocked(id, Slice(image), new_capacity, &logical);
  if (!s.ok()) return s;
  const std::uint64_t old_offset = index_.Find(id);
  EntryHeader* old_hdr = HeaderAt(old_offset);
  const std::uint64_t old_size = old_hdr->size;
  const std::uint64_t old_slack = old_hdr->capacity - old_hdr->size;
  old_hdr->id = kDeadCell;
  stats_.dead_bytes += EntrySpan(old_hdr->capacity);
  index_.Upsert(id, logical);
  stats_.live_bytes += new_size - old_size;
  stats_.reserved_slack -= old_slack;
  stats_.reserved_slack += new_capacity - new_size;
  ++stats_.expansions_relocated;
  return Status::OK();
}

Status MemoryTrunk::WriteAt(CellId id, std::uint64_t offset, Slice bytes) {
  auto lock = WriteLock();
  const std::uint64_t entry = index_.Find(id);
  if (entry == TrunkIndex::kNoOffset) return Status::NotFound("no such cell");
  EntryHeader* hdr = HeaderAt(entry);
  if (offset + bytes.size() > hdr->size) {
    return Status::InvalidArgument("write past end of cell");
  }
  CellLockGuard cell_lock(this, id);
  if (!bytes.empty()) {
    std::memcpy(PhysPtr(entry) + kHeaderSize + offset, bytes.data(),
                bytes.size());
  }
  return Status::OK();
}

Status MemoryTrunk::Access(CellId id, ConstAccessor* accessor) const {
  auto lock = ReadLock();
  const std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) return Status::NotFound("no such cell");
  const EntryHeader* hdr = HeaderAt(offset);
  accessor->Release();  // Before acquiring: the old stripe may equal ours.
  // Pins the cell: defrag TryLock will skip it. Debug builds abort on
  // re-entrant stripe acquisition (see AcquireCellLock).
  accessor->lock_ = AcquireCellLock(id);
  accessor->data_ = Slice(PhysPtr(offset) + kHeaderSize, hdr->size);
  return Status::OK();
}

std::uint64_t MemoryTrunk::Defragment() {
  auto lock = WriteLock();
  return DefragmentLocked();
}

std::uint64_t MemoryTrunk::DefragmentLocked() {
  ++stats_.defrag_passes;
  in_defrag_ = true;
  std::uint64_t reclaimed = 0;
  std::string image;
  const std::uint64_t pass_end = head_;
  while (tail_ < pass_end && tail_ < head_) {
    if (stats_.dead_bytes == 0 && stats_.reserved_slack == 0) break;
    const std::uint64_t phys = tail_ % capacity_;
    const std::uint64_t rem = capacity_ - phys;
    if (rem < kHeaderSize) {
      tail_ += rem;
      stats_.dead_bytes -= rem;
      reclaimed += rem;
      continue;
    }
    EntryHeader* hdr = HeaderAt(tail_);
    const std::uint64_t span = EntrySpan(hdr->capacity);
    if (hdr->id == kPadCell || hdr->id == kDeadCell) {
      tail_ += span;
      stats_.dead_bytes -= span;
      reclaimed += span;
      continue;
    }
    // Live entry: move it to the head (trimming any unused reservation,
    // which is what makes reservations "short-lived").
    const CellId id = hdr->id;
    const std::uint32_t size = hdr->size;
    const std::uint64_t slack = hdr->capacity - size;
    // Precheck that re-appending (including any ring padding the move may
    // require) fits once this entry's own span is freed; otherwise stop the
    // pass rather than risk overwriting the bytes being moved.
    {
      const std::uint64_t need = EntrySpan(size);
      const std::uint64_t head_phys = head_ % capacity_;
      const std::uint64_t rem = capacity_ - head_phys;
      const std::uint64_t pad = rem < need ? rem : 0;
      if (head_ - (tail_ + span) + pad + need > capacity_) break;
    }
    SpinLock& cell_lock = LockFor(id);
    if (!cell_lock.TryLock()) break;  // Pinned by an accessor; stop here.
    image.assign(PhysPtr(tail_) + kHeaderSize, size);
    hdr->id = kDeadCell;
    tail_ += span;
    std::uint64_t logical = 0;
    Status s = AppendEntryLocked(id, Slice(image), size, &logical);
    TRINITY_CHECK(s.ok(), "defrag re-append failed after space precheck");
    index_.Upsert(id, logical);
    stats_.reserved_slack -= slack;
    reclaimed += slack;
    ++stats_.cells_moved;
    cell_lock.Unlock();
  }
  in_defrag_ = false;
  DecommitDeadPagesLocked();
  return reclaimed;
}

MemoryTrunk::Stats MemoryTrunk::stats() const {
  auto lock = ReadLock();
  Stats s = stats_;
  s.used_bytes = head_ - tail_;
  s.committed_bytes = committed_page_count_ * page_size_;
  s.capacity = capacity_;
  // Lock-contention counters live outside stats_ as relaxed atomics so the
  // hot paths can bump them without owning the trunk lock exclusively.
  s.shared_reads = shared_reads_.load(std::memory_order_relaxed);
  s.read_lock_contended = read_lock_contended_.load(std::memory_order_relaxed);
  s.write_lock_contended =
      write_lock_contended_.load(std::memory_order_relaxed);
  s.cell_lock_contended = cell_lock_contended_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t MemoryTrunk::cell_count() const {
  auto lock = ReadLock();
  return index_.size();
}

std::vector<CellId> MemoryTrunk::CellIds() const {
  auto lock = ReadLock();
  std::vector<CellId> ids;
  ids.reserve(index_.size());
  index_.ForEach([&](CellId id, std::uint64_t) { ids.push_back(id); });
  return ids;
}

Status MemoryTrunk::Serialize(std::string* out) const {
  auto lock = ReadLock();
  BinaryWriter writer;
  writer.PutU64(index_.size());
  index_.ForEach([&](CellId id, std::uint64_t offset) {
    const EntryHeader* hdr = HeaderAt(offset);
    writer.PutU64(id);
    writer.PutBytes(Slice(PhysPtr(offset) + kHeaderSize, hdr->size));
  });
  *out = writer.Release();
  return Status::OK();
}

Status MemoryTrunk::Deserialize(Slice data, const Options& options,
                                std::unique_ptr<MemoryTrunk>* out) {
  std::unique_ptr<MemoryTrunk> trunk;
  Status s = Create(options, &trunk);
  if (!s.ok()) return s;
  BinaryReader reader(data);
  std::uint64_t count = 0;
  if (!reader.GetU64(&count)) return Status::Corruption("trunk image header");
  for (std::uint64_t i = 0; i < count; ++i) {
    CellId id = 0;
    Slice payload;
    if (!reader.GetU64(&id) || !reader.GetBytes(&payload)) {
      return Status::Corruption("trunk image entry");
    }
    s = trunk->AddCell(id, payload);
    if (!s.ok()) return s;
  }
  *out = std::move(trunk);
  return Status::OK();
}

}  // namespace trinity::storage
