#include "storage/memory_trunk.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "common/serializer.h"

namespace trinity::storage {

namespace {

/// Leading u64 of version-2 trunk images. Version-1 images start with the
/// cell count instead; no real trunk holds ~6e18 cells, so the magic is
/// unambiguous and legacy images stay readable.
constexpr std::uint64_t kTrunkImageMagic = 0x54524e4b494d4732ull;  // TRNKIMG2

/// Distinguishes cold-page prefixes across trunk incarnations (replicas,
/// recovery reloads) sharing one TFS namespace.
std::atomic<std::uint64_t> cold_tier_instances{0};

}  // namespace

MemoryTrunk::MemoryTrunk(const Options& options) : options_(options) {}

Status MemoryTrunk::Create(const Options& options,
                           std::unique_ptr<MemoryTrunk>* out) {
  if (options.capacity < (1u << 12)) {
    return Status::InvalidArgument("trunk capacity too small");
  }
  if (options.memory_budget > 0 && options.cold_tfs == nullptr) {
    return Status::InvalidArgument("memory budget requires a cold tfs");
  }
  std::unique_ptr<MemoryTrunk> trunk(new MemoryTrunk(options));
  Status s = trunk->Init();
  if (!s.ok()) return s;
  *out = std::move(trunk);
  return Status::OK();
}

Status MemoryTrunk::Init() {
  page_size_ = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  capacity_ = (options_.capacity + page_size_ - 1) / page_size_ * page_size_;
  // Reserve the address range without committing physical memory — the
  // paper's "reserve a 2GB virtual memory address space" step.
  void* mem = ::mmap(nullptr, capacity_, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (mem == MAP_FAILED) {
    return Status::OutOfMemory("cannot reserve trunk address space");
  }
  base_ = static_cast<char*>(mem);
  committed_pages_.assign(capacity_ / page_size_, false);
  locks_ = std::make_unique<SpinLock[]>(kLockStripes);
  ref_bits_ = std::make_unique<std::atomic<std::uint8_t>[]>(kRefStripes);
  if (options_.memory_budget > 0) {
    ColdTier::Options cold;
    cold.tfs = options_.cold_tfs;
    cold.prefix =
        options_.cold_prefix + "/t" +
        std::to_string(
            cold_tier_instances.fetch_add(1, std::memory_order_relaxed));
    cold.page_payload_bytes = options_.cold_page_bytes;
    cold_tier_ = std::make_unique<ColdTier>(std::move(cold));
  }
  return Status::OK();
}

MemoryTrunk::~MemoryTrunk() {
  if (base_ != nullptr) ::munmap(base_, capacity_);
}

SpinLock& MemoryTrunk::LockFor(CellId id) const {
  return locks_[InTrunkHash(id) % kLockStripes];
}

std::shared_lock<std::shared_mutex> MemoryTrunk::ReadLock() const {
  shared_reads_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    read_lock_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

std::unique_lock<std::shared_mutex> MemoryTrunk::WriteLock() const {
  std::unique_lock<std::shared_mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    write_lock_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

SpinLock* MemoryTrunk::AcquireCellLock(CellId id) const {
  SpinLock& lock = LockFor(id);
#ifndef NDEBUG
  TRINITY_CHECK(!internal::StripeHeldByThisThread(&lock),
                "re-entrant striped cell-lock acquisition: this thread "
                "already holds an accessor or cell lock on this stripe and "
                "would self-deadlock (see docs/concurrent_reads.md)");
#endif
  if (!lock.TryLock()) {
    cell_lock_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.Lock();
  }
#ifndef NDEBUG
  internal::NoteStripeAcquired(&lock);
#endif
  return &lock;
}

void MemoryTrunk::ReleaseCellLock(SpinLock* lock) const {
#ifndef NDEBUG
  internal::NoteStripeReleased(lock);
#endif
  lock->Unlock();
}

Status MemoryTrunk::EnsureCommitted(std::uint64_t phys_begin,
                                    std::uint64_t length) {
  if (length == 0) return Status::OK();
  const std::uint64_t first = phys_begin / page_size_;
  const std::uint64_t last = (phys_begin + length - 1) / page_size_;
  for (std::uint64_t page = first; page <= last; ++page) {
    if (committed_pages_[page]) continue;
    if (::mprotect(base_ + page * page_size_, page_size_,
                   PROT_READ | PROT_WRITE) != 0) {
      return Status::OutOfMemory("mprotect commit failed");
    }
    committed_pages_[page] = true;
    ++committed_page_count_;
  }
  return Status::OK();
}

void MemoryTrunk::DecommitDeadPagesLocked() {
  // Compute the physical pages overlapped by the live logical window
  // [tail_, head_) and release everything else back to the OS.
  const std::uint64_t used = head_ - tail_;
  std::vector<bool> live(committed_pages_.size(), false);
  if (used >= capacity_) {
    live.assign(live.size(), true);
  } else if (used > 0) {
    const std::uint64_t lt = tail_ % capacity_;
    const std::uint64_t lh = head_ % capacity_;
    auto mark = [&](std::uint64_t begin, std::uint64_t end) {
      if (begin >= end) return;
      const std::uint64_t first = begin / page_size_;
      const std::uint64_t last = (end - 1) / page_size_;
      for (std::uint64_t p = first; p <= last; ++p) live[p] = true;
    };
    if (lt < lh) {
      mark(lt, lh);
    } else {
      mark(lt, capacity_);
      mark(0, lh);
    }
  }
  for (std::uint64_t page = 0; page < committed_pages_.size(); ++page) {
    if (committed_pages_[page] && !live[page]) {
      char* addr = base_ + page * page_size_;
      ::madvise(addr, page_size_, MADV_DONTNEED);
      ::mprotect(addr, page_size_, PROT_NONE);
      committed_pages_[page] = false;
      --committed_page_count_;
    }
  }
}

Status MemoryTrunk::AllocateLocked(std::uint64_t span,
                                   std::uint64_t* logical) {
  if (span > capacity_) return Status::InvalidArgument("cell too large");
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint64_t phys = head_ % capacity_;
    const std::uint64_t rem = capacity_ - phys;
    const std::uint64_t pad = rem < span ? rem : 0;
    if (head_ - tail_ + pad + span > capacity_) {
      // Compaction can reclaim dead bytes; with a cold tier configured the
      // pass can also spill to make room even when nothing is dead yet.
      const bool can_spill =
          cold_tier_ != nullptr && head_ - tail_ > options_.memory_budget;
      if (attempt == 0 && (stats_.dead_bytes > 0 || can_spill) &&
          !in_defrag_) {
        DefragmentLocked();
        continue;
      }
      return Status::OutOfMemory("trunk full");
    }
    if (pad > 0) {
      if (rem >= kHeaderSize) {
        Status s = EnsureCommitted(phys, kHeaderSize);
        if (!s.ok()) return s;
        EntryHeader* hdr = HeaderAt(head_);
        hdr->id = kPadCell;
        hdr->size = 0;
        // Pads keep the full 32-bit capacity (no format bits): a pad span
        // can exceed the 1 GB cell cap on a large trunk.
        hdr->capacity = static_cast<std::uint32_t>(rem - kHeaderSize);
      }
      // rem < kHeaderSize leaves an implicit pad the scanner skips.
      head_ += pad;
      stats_.dead_bytes += pad;
    }
    Status s = EnsureCommitted(head_ % capacity_, span);
    if (!s.ok()) return s;
    *logical = head_;
    head_ += span;
    return Status::OK();
  }
  return Status::OutOfMemory("trunk full");
}

Status MemoryTrunk::AppendEntryLocked(CellId id, Slice payload,
                                      std::uint64_t capacity,
                                      std::uint64_t* logical,
                                      CellFormat format) {
  if (capacity < payload.size()) capacity = payload.size();
  if (capacity > kCapacityMask) {
    return Status::InvalidArgument("cell exceeds 1 GB capacity cap");
  }
  const std::uint64_t span = EntrySpan(capacity);
  Status s = AllocateLocked(span, logical);
  if (!s.ok()) return s;
  EntryHeader* hdr = HeaderAt(*logical);
  hdr->id = id;
  hdr->size = static_cast<std::uint32_t>(payload.size());
  SetCapFormat(hdr, capacity, format);
  if (!payload.empty()) {
    std::memcpy(PhysPtr(*logical) + kHeaderSize, payload.data(),
                payload.size());
  }
  return Status::OK();
}

Status MemoryTrunk::InstallStoredLocked(CellId id, CellFormat format,
                                        Slice stored) {
  std::uint64_t logical = 0;
  Status s = AppendEntryLocked(id, stored, stored.size(), &logical, format);
  if (!s.ok()) return s;
  index_.Upsert(id, logical);
  ++stats_.live_cells;
  stats_.live_bytes += stored.size();
  if (format == CellFormat::kAdjDelta) {
    ++stats_.compressed_cells;
    stats_.compressed_bytes += stored.size();
  }
  return Status::OK();
}

Status MemoryTrunk::FaultInLocked(CellId id) {
  // Make room first: the faulting cell is not resident, so it cannot be
  // chosen as a victim. This keeps read-only fault storms (e.g. PageRank
  // sweeping a 4× graph) from overrunning the ring.
  MaybeEnforceBudgetLocked();
  std::string stored;
  ColdTier::CellMeta meta;
  Status s = cold_tier_->ReadCell(id, &stored, &meta);
  if (!s.ok()) return s;
  s = InstallStoredLocked(id, static_cast<CellFormat>(meta.format),
                          Slice(stored));
  if (!s.ok()) return s;  // Mapping still in the cold tier: nothing lost.
  ++stats_.cells_faulted;
  TouchRefBit(id);  // A fresh fault-in deserves its second chance.
  cold_tier_->Drop(id);
  return Status::OK();
}

void MemoryTrunk::MaybeEnforceBudgetLocked() {
  if (cold_tier_ == nullptr || in_defrag_) return;
  if (head_ - tail_ <= options_.memory_budget) return;
  DefragmentLocked();
}

Status MemoryTrunk::AddCell(CellId id, Slice payload) {
  if (id >= kDeadCell) return Status::InvalidArgument("reserved cell id");
  auto lock = WriteLock();
  if (index_.Find(id) != TrunkIndex::kNoOffset) {
    return Status::AlreadyExists("cell exists");
  }
  if (cold_tier_ != nullptr && cold_tier_->Contains(id)) {
    return Status::AlreadyExists("cell exists (spilled)");
  }
  std::string enc;
  const CellFormat format =
      options_.compress_adjacency && CellCodec::EncodeAdjacency(payload, &enc)
          ? CellFormat::kAdjDelta
          : CellFormat::kRaw;
  const Slice stored = format == CellFormat::kAdjDelta ? Slice(enc) : payload;
  Status s = InstallStoredLocked(id, format, stored);
  if (!s.ok()) return s;
  MaybeEnforceBudgetLocked();
  return Status::OK();
}

Status MemoryTrunk::PutCell(CellId id, Slice payload) {
  if (id >= kDeadCell) return Status::InvalidArgument("reserved cell id");
  auto lock = WriteLock();
  std::string enc;
  const CellFormat format =
      options_.compress_adjacency && CellCodec::EncodeAdjacency(payload, &enc)
          ? CellFormat::kAdjDelta
          : CellFormat::kRaw;
  const Slice stored = format == CellFormat::kAdjDelta ? Slice(enc) : payload;
  const std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) {
    // Fresh insert — or blind overwrite of a spilled cell, which never needs
    // the old bytes: install the new image, then drop the cold mapping.
    Status s = InstallStoredLocked(id, format, stored);
    if (!s.ok()) return s;
    if (cold_tier_ != nullptr) cold_tier_->Drop(id);
    MaybeEnforceBudgetLocked();
    return Status::OK();
  }
  EntryHeader* hdr = HeaderAt(offset);
  CellLockGuard cell_lock(this, id);
  const CellFormat old_format = FormatOf(hdr);
  if (stored.size() <= CapOf(hdr)) {
    // In-place overwrite; shrink or grow within the existing allocation.
    stats_.live_bytes += stored.size();
    stats_.live_bytes -= hdr->size;
    stats_.reserved_slack += hdr->size;
    stats_.reserved_slack -= stored.size();
    if (old_format == CellFormat::kAdjDelta) {
      --stats_.compressed_cells;
      stats_.compressed_bytes -= hdr->size;
    }
    if (format == CellFormat::kAdjDelta) {
      ++stats_.compressed_cells;
      stats_.compressed_bytes += stored.size();
    }
    if (!stored.empty()) {
      std::memcpy(PhysPtr(offset) + kHeaderSize, stored.data(),
                  stored.size());
    }
    hdr->size = static_cast<std::uint32_t>(stored.size());
    SetCapFormat(hdr, CapOf(hdr), format);
    return Status::OK();
  }
  // Relocate: append the new image first; only then kill the old entry.
  // The allocation may trigger an auto-defrag pass that *moves* the old
  // entry, so its location must be re-resolved through the index afterwards.
  std::uint64_t logical = 0;
  Status s = AppendEntryLocked(id, stored, stored.size(), &logical, format);
  if (!s.ok()) return s;  // Old entry untouched and still indexed.
  const std::uint64_t old_offset = index_.Find(id);
  EntryHeader* old_hdr = HeaderAt(old_offset);
  const std::uint64_t old_size = old_hdr->size;
  const std::uint64_t old_cap = CapOf(old_hdr);
  const std::uint64_t old_slack = old_cap - old_size;
  old_hdr->id = kDeadCell;
  old_hdr->capacity = static_cast<std::uint32_t>(old_cap);
  stats_.dead_bytes += EntrySpan(old_cap);
  index_.Upsert(id, logical);
  stats_.live_bytes += stored.size();
  stats_.live_bytes -= old_size;
  stats_.reserved_slack -= old_slack;
  if (old_format == CellFormat::kAdjDelta) {
    --stats_.compressed_cells;
    stats_.compressed_bytes -= old_size;
  }
  if (format == CellFormat::kAdjDelta) {
    ++stats_.compressed_cells;
    stats_.compressed_bytes += stored.size();
  }
  MaybeEnforceBudgetLocked();
  return Status::OK();
}

Status MemoryTrunk::ReadPayloadLocked(std::uint64_t logical,
                                      std::string* out) const {
  const EntryHeader* hdr = HeaderAt(logical);
  if (FormatOf(hdr) == CellFormat::kRaw) {
    out->assign(PhysPtr(logical) + kHeaderSize, hdr->size);
    return Status::OK();
  }
  return CellCodec::DecodeAdjacency(StoredAt(logical), out);
}

Status MemoryTrunk::GetCell(CellId id, std::string* out) const {
  {
    auto lock = ReadLock();
    const std::uint64_t offset = index_.Find(id);
    if (offset != TrunkIndex::kNoOffset) {
      TouchRefBit(id);
      return ReadPayloadLocked(offset, out);
    }
    if (cold_tier_ == nullptr || !cold_tier_->Contains(id)) {
      return Status::NotFound("no such cell");
    }
  }
  // Spilled: fault it in under the exclusive side, then serve. The double
  // check below covers a racing fault-in (or removal) between the locks.
  auto* self = const_cast<MemoryTrunk*>(this);
  auto lock = self->WriteLock();
  std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) {
    if (cold_tier_ == nullptr || !cold_tier_->Contains(id)) {
      return Status::NotFound("no such cell");
    }
    Status s = self->FaultInLocked(id);
    if (!s.ok()) return s;
    offset = index_.Find(id);
  }
  TouchRefBit(id);
  return ReadPayloadLocked(offset, out);
}

bool MemoryTrunk::Contains(CellId id) const {
  auto lock = ReadLock();
  if (index_.Find(id) != TrunkIndex::kNoOffset) return true;
  return cold_tier_ != nullptr && cold_tier_->Contains(id);
}

Status MemoryTrunk::GetCellSize(CellId id, std::uint64_t* size) const {
  auto lock = ReadLock();
  const std::uint64_t offset = index_.Find(id);
  if (offset != TrunkIndex::kNoOffset) {
    const EntryHeader* hdr = HeaderAt(offset);
    if (FormatOf(hdr) == CellFormat::kRaw) {
      *size = hdr->size;
      return Status::OK();
    }
    return CellCodec::DecodedSize(StoredAt(offset), size);
  }
  ColdTier::CellMeta meta;
  if (cold_tier_ != nullptr && cold_tier_->Lookup(id, &meta)) {
    *size = meta.raw_size;  // Answered from the page table: no cold I/O.
    return Status::OK();
  }
  return Status::NotFound("no such cell");
}

Status MemoryTrunk::RemoveCell(CellId id) {
  auto lock = WriteLock();
  const std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) {
    if (cold_tier_ != nullptr && cold_tier_->Contains(id)) {
      cold_tier_->Drop(id);  // Page space reclaimed when the page drains.
      return Status::OK();
    }
    return Status::NotFound("no such cell");
  }
  EntryHeader* hdr = HeaderAt(offset);
  CellLockGuard cell_lock(this, id);
  index_.Erase(id);
  --stats_.live_cells;
  stats_.live_bytes -= hdr->size;
  const std::uint64_t cap = CapOf(hdr);
  stats_.reserved_slack -= cap - hdr->size;
  stats_.dead_bytes += EntrySpan(cap);
  if (FormatOf(hdr) == CellFormat::kAdjDelta) {
    --stats_.compressed_cells;
    stats_.compressed_bytes -= hdr->size;
  }
  hdr->id = kDeadCell;
  hdr->capacity = static_cast<std::uint32_t>(cap);
  return Status::OK();
}

Status MemoryTrunk::AppendToCell(CellId id, Slice suffix) {
  auto lock = WriteLock();
  std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) {
    if (cold_tier_ == nullptr || !cold_tier_->Contains(id)) {
      return Status::NotFound("no such cell");
    }
    Status s = FaultInLocked(id);
    if (!s.ok()) return s;
    offset = index_.Find(id);
  }
  EntryHeader* hdr = HeaderAt(offset);
  CellLockGuard cell_lock(this, id);
  if (FormatOf(hdr) == CellFormat::kRaw) {
    const std::uint64_t new_size = hdr->size + suffix.size();
    if (new_size <= CapOf(hdr)) {
      // The short-lived reservation absorbs the growth; no relocation.
      if (!suffix.empty()) {
        std::memcpy(PhysPtr(offset) + kHeaderSize + hdr->size, suffix.data(),
                    suffix.size());
      }
      stats_.reserved_slack -= suffix.size();
      stats_.live_bytes += suffix.size();
      hdr->size = static_cast<std::uint32_t>(new_size);
      ++stats_.expansions_in_place;
      return Status::OK();
    }
  }
  // Relocate with a fresh short-lived reservation (§6.1: "if the current
  // key-value pair needs to expand by 16 bytes, we allocate 32 instead").
  // A compressed cell is materialized to raw here — append-heavy cells stay
  // raw and cheap to grow; the next defrag move re-compresses them.
  std::string image;
  Status s = ReadPayloadLocked(offset, &image);
  if (!s.ok()) return s;
  image.append(suffix.data(), suffix.size());
  const std::uint64_t new_size = image.size();
  const std::uint64_t reserve =
      new_size * static_cast<std::uint64_t>(options_.reservation_pct) / 100;
  const std::uint64_t new_capacity = new_size + reserve;
  // Append-first, as in PutCell: auto-defrag during allocation may move the
  // old entry, so re-resolve it via the index before killing it.
  std::uint64_t logical = 0;
  s = AppendEntryLocked(id, Slice(image), new_capacity, &logical);
  if (!s.ok()) return s;
  const std::uint64_t old_offset = index_.Find(id);
  EntryHeader* old_hdr = HeaderAt(old_offset);
  const std::uint64_t old_size = old_hdr->size;
  const std::uint64_t old_cap = CapOf(old_hdr);
  const std::uint64_t old_slack = old_cap - old_size;
  const CellFormat old_format = FormatOf(old_hdr);
  old_hdr->id = kDeadCell;
  old_hdr->capacity = static_cast<std::uint32_t>(old_cap);
  stats_.dead_bytes += EntrySpan(old_cap);
  index_.Upsert(id, logical);
  stats_.live_bytes += new_size;
  stats_.live_bytes -= old_size;
  stats_.reserved_slack -= old_slack;
  stats_.reserved_slack += new_capacity - new_size;
  if (old_format == CellFormat::kAdjDelta) {
    --stats_.compressed_cells;
    stats_.compressed_bytes -= old_size;
  }
  ++stats_.expansions_relocated;
  MaybeEnforceBudgetLocked();
  return Status::OK();
}

Status MemoryTrunk::WriteAt(CellId id, std::uint64_t offset, Slice bytes) {
  auto lock = WriteLock();
  std::uint64_t entry = index_.Find(id);
  if (entry == TrunkIndex::kNoOffset) {
    if (cold_tier_ == nullptr || !cold_tier_->Contains(id)) {
      return Status::NotFound("no such cell");
    }
    Status s = FaultInLocked(id);
    if (!s.ok()) return s;
    entry = index_.Find(id);
  }
  EntryHeader* hdr = HeaderAt(entry);
  if (FormatOf(hdr) == CellFormat::kRaw) {
    if (offset + bytes.size() > hdr->size) {
      return Status::InvalidArgument("write past end of cell");
    }
    CellLockGuard cell_lock(this, id);
    if (!bytes.empty()) {
      std::memcpy(PhysPtr(entry) + kHeaderSize + offset, bytes.data(),
                  bytes.size());
    }
    return Status::OK();
  }
  // Compressed: patch the decoded image and re-store (re-encoding when the
  // patched payload still compresses).
  std::string image;
  Status s = ReadPayloadLocked(entry, &image);
  if (!s.ok()) return s;
  if (offset + bytes.size() > image.size()) {
    return Status::InvalidArgument("write past end of cell");
  }
  if (!bytes.empty()) {
    std::memcpy(&image[offset], bytes.data(), bytes.size());
  }
  std::string enc;
  const CellFormat format =
      options_.compress_adjacency &&
              CellCodec::EncodeAdjacency(Slice(image), &enc)
          ? CellFormat::kAdjDelta
          : CellFormat::kRaw;
  const Slice stored = format == CellFormat::kAdjDelta ? Slice(enc)
                                                       : Slice(image);
  CellLockGuard cell_lock(this, id);
  if (stored.size() <= CapOf(hdr)) {
    stats_.live_bytes += stored.size();
    stats_.live_bytes -= hdr->size;
    stats_.reserved_slack += hdr->size;
    stats_.reserved_slack -= stored.size();
    --stats_.compressed_cells;
    stats_.compressed_bytes -= hdr->size;
    if (format == CellFormat::kAdjDelta) {
      ++stats_.compressed_cells;
      stats_.compressed_bytes += stored.size();
    }
    std::memcpy(PhysPtr(entry) + kHeaderSize, stored.data(), stored.size());
    hdr->size = static_cast<std::uint32_t>(stored.size());
    SetCapFormat(hdr, CapOf(hdr), format);
    return Status::OK();
  }
  std::uint64_t logical = 0;
  s = AppendEntryLocked(id, stored, stored.size(), &logical, format);
  if (!s.ok()) return s;
  const std::uint64_t old_offset = index_.Find(id);
  EntryHeader* old_hdr = HeaderAt(old_offset);
  const std::uint64_t old_size = old_hdr->size;
  const std::uint64_t old_cap = CapOf(old_hdr);
  old_hdr->id = kDeadCell;
  old_hdr->capacity = static_cast<std::uint32_t>(old_cap);
  stats_.dead_bytes += EntrySpan(old_cap);
  index_.Upsert(id, logical);
  stats_.live_bytes += stored.size();
  stats_.live_bytes -= old_size;
  stats_.reserved_slack -= old_cap - old_size;
  --stats_.compressed_cells;
  stats_.compressed_bytes -= old_size;
  if (format == CellFormat::kAdjDelta) {
    ++stats_.compressed_cells;
    stats_.compressed_bytes += stored.size();
  }
  MaybeEnforceBudgetLocked();
  return Status::OK();
}

Status MemoryTrunk::PinLocked(CellId id, std::uint64_t offset,
                              ConstAccessor* accessor) const {
  const EntryHeader* hdr = HeaderAt(offset);
  accessor->Release();  // Before acquiring: the old stripe may equal ours.
  if (FormatOf(hdr) == CellFormat::kRaw) {
    // Pins the cell: defrag/eviction TryLock will skip it. Debug builds
    // abort on re-entrant stripe acquisition (see AcquireCellLock).
    accessor->lock_ = AcquireCellLock(id);
    accessor->data_ = Slice(PhysPtr(offset) + kHeaderSize, hdr->size);
    return Status::OK();
  }
  // Materialize-on-pin: the decoded copy is self-contained, so no stripe
  // lock is held and the lock-free read path stays untouched.
  auto owned = std::make_unique<std::string>();
  Status s = CellCodec::DecodeAdjacency(StoredAt(offset), owned.get());
  if (!s.ok()) return s;
  accessor->owned_ = std::move(owned);
  accessor->data_ = Slice(*accessor->owned_);
  return Status::OK();
}

Status MemoryTrunk::Access(CellId id, ConstAccessor* accessor) const {
  {
    auto lock = ReadLock();
    const std::uint64_t offset = index_.Find(id);
    if (offset != TrunkIndex::kNoOffset) {
      TouchRefBit(id);
      return PinLocked(id, offset, accessor);
    }
    if (cold_tier_ == nullptr || !cold_tier_->Contains(id)) {
      return Status::NotFound("no such cell");
    }
  }
  auto* self = const_cast<MemoryTrunk*>(this);
  auto lock = self->WriteLock();
  std::uint64_t offset = index_.Find(id);
  if (offset == TrunkIndex::kNoOffset) {
    if (cold_tier_ == nullptr || !cold_tier_->Contains(id)) {
      return Status::NotFound("no such cell");
    }
    Status s = self->FaultInLocked(id);
    if (!s.ok()) return s;
    offset = index_.Find(id);
  }
  TouchRefBit(id);
  return PinLocked(id, offset, accessor);
}

std::uint64_t MemoryTrunk::Defragment() {
  auto lock = WriteLock();
  return DefragmentLocked();
}

void MemoryTrunk::SpillColdLocked(std::uint64_t target) {
  // Clock sweep over the ring from the tail — oldest-written data first,
  // which approximates LRU once ref bits thin it. Round 0 grants every
  // referenced cell a second chance (clearing its bit); round 1 takes any
  // cell that is not pinned by an accessor.
  auto live_span_bytes = [&] { return head_ - tail_ - stats_.dead_bytes; };
  for (int round = 0; round < 2 && live_span_bytes() > target; ++round) {
    std::vector<ColdTier::SpillEntry> victims;
    std::vector<SpinLock*> held;
    std::vector<std::uint64_t> offsets;
    std::uint64_t projected = live_span_bytes();
    for (std::uint64_t pos = tail_; pos < head_ && projected > target;) {
      const std::uint64_t phys = pos % capacity_;
      const std::uint64_t rem = capacity_ - phys;
      if (rem < kHeaderSize) {
        pos += rem;
        continue;
      }
      EntryHeader* hdr = HeaderAt(pos);
      const std::uint64_t cap =
          hdr->id == kPadCell ? hdr->capacity : CapOf(hdr);
      const std::uint64_t span = EntrySpan(cap);
      if (hdr->id == kPadCell || hdr->id == kDeadCell) {
        pos += span;
        continue;
      }
      const CellId id = hdr->id;
      if (round == 0 && TestClearRefBit(id)) {
        pos += span;  // Second chance.
        continue;
      }
      SpinLock& cell_lock = LockFor(id);
      if (!cell_lock.TryLock()) {
        pos += span;  // Pinned by an accessor (or a stripe-mate victim).
        continue;
      }
      held.push_back(&cell_lock);
      offsets.push_back(pos);
      ColdTier::SpillEntry entry;
      entry.id = id;
      entry.format = static_cast<std::uint8_t>(FormatOf(hdr));
      entry.raw_size = static_cast<std::uint32_t>(
          CellCodec::LogicalSize(FormatOf(hdr), StoredAt(pos)));
      entry.stored = StoredAt(pos);
      victims.push_back(entry);
      projected -= span;
      pos += span;
    }
    if (victims.empty()) continue;
    // Crash-safety order: pages first. Only once every victim is durable in
    // the cold tier do the resident copies die; a failed write rolls back
    // any partially-installed mappings and leaves all victims resident.
    Status s = cold_tier_->Spill(victims);
    if (!s.ok()) {
      for (const auto& victim : victims) cold_tier_->Drop(victim.id);
      for (SpinLock* lock : held) lock->Unlock();
      return;
    }
    for (std::size_t i = 0; i < victims.size(); ++i) {
      EntryHeader* hdr = HeaderAt(offsets[i]);
      const std::uint64_t cap = CapOf(hdr);
      index_.Erase(hdr->id);
      --stats_.live_cells;
      stats_.live_bytes -= hdr->size;
      stats_.reserved_slack -= cap - hdr->size;
      stats_.dead_bytes += EntrySpan(cap);
      if (FormatOf(hdr) == CellFormat::kAdjDelta) {
        --stats_.compressed_cells;
        stats_.compressed_bytes -= hdr->size;
      }
      ++stats_.cells_evicted;
      hdr->id = kDeadCell;
      hdr->capacity = static_cast<std::uint32_t>(cap);
      held[i]->Unlock();
    }
  }
}

std::uint64_t MemoryTrunk::DefragmentLocked() {
  ++stats_.defrag_passes;
  in_defrag_ = true;
  // Over budget? The compaction pass doubles as the eviction pass: spill
  // down to a low-water mark (7/8 of the budget) so enforcement amortizes
  // instead of re-triggering on every subsequent allocation.
  if (cold_tier_ != nullptr && head_ - tail_ > options_.memory_budget) {
    SpillColdLocked(options_.memory_budget - options_.memory_budget / 8);
  }
  std::uint64_t reclaimed = 0;
  std::string image;
  const std::uint64_t pass_end = head_;
  while (tail_ < pass_end && tail_ < head_) {
    if (stats_.dead_bytes == 0 && stats_.reserved_slack == 0) break;
    const std::uint64_t phys = tail_ % capacity_;
    const std::uint64_t rem = capacity_ - phys;
    if (rem < kHeaderSize) {
      tail_ += rem;
      stats_.dead_bytes -= rem;
      reclaimed += rem;
      continue;
    }
    EntryHeader* hdr = HeaderAt(tail_);
    const std::uint64_t cap = hdr->id == kPadCell ? hdr->capacity : CapOf(hdr);
    const std::uint64_t span = EntrySpan(cap);
    if (hdr->id == kPadCell || hdr->id == kDeadCell) {
      tail_ += span;
      stats_.dead_bytes -= span;
      reclaimed += span;
      continue;
    }
    // Live entry: move it to the head (trimming any unused reservation,
    // which is what makes reservations "short-lived").
    const CellId id = hdr->id;
    const std::uint32_t size = hdr->size;
    const CellFormat format = FormatOf(hdr);
    const std::uint64_t slack = cap - size;
    // Precheck that re-appending (including any ring padding the move may
    // require) fits once this entry's own span is freed; otherwise stop the
    // pass rather than risk overwriting the bytes being moved.
    {
      const std::uint64_t need = EntrySpan(size);
      const std::uint64_t head_phys = head_ % capacity_;
      const std::uint64_t head_rem = capacity_ - head_phys;
      const std::uint64_t pad = head_rem < need ? head_rem : 0;
      if (head_ - (tail_ + span) + pad + need > capacity_) break;
    }
    SpinLock& cell_lock = LockFor(id);
    if (!cell_lock.TryLock()) break;  // Pinned by an accessor; stop here.
    image.assign(PhysPtr(tail_) + kHeaderSize, size);
    // The move is the natural point to re-compress cells that append-heavy
    // phases materialized to raw (adaptive: only when strictly smaller).
    std::string enc;
    CellFormat new_format = format;
    Slice stored(image);
    if (format == CellFormat::kRaw && options_.compress_adjacency &&
        CellCodec::EncodeAdjacency(Slice(image), &enc)) {
      new_format = CellFormat::kAdjDelta;
      stored = Slice(enc);
    }
    hdr->id = kDeadCell;
    hdr->capacity = static_cast<std::uint32_t>(cap);
    tail_ += span;
    std::uint64_t logical = 0;
    Status s =
        AppendEntryLocked(id, stored, stored.size(), &logical, new_format);
    TRINITY_CHECK(s.ok(), "defrag re-append failed after space precheck");
    index_.Upsert(id, logical);
    stats_.reserved_slack -= slack;
    reclaimed += slack;
    if (new_format != format) {
      stats_.live_bytes -= size;
      stats_.live_bytes += stored.size();
      ++stats_.compressed_cells;
      stats_.compressed_bytes += stored.size();
      reclaimed += size - stored.size();
    }
    ++stats_.cells_moved;
    cell_lock.Unlock();
  }
  in_defrag_ = false;
  DecommitDeadPagesLocked();
  return reclaimed;
}

MemoryTrunk::Stats MemoryTrunk::stats() const {
  auto lock = ReadLock();
  Stats s = stats_;
  s.used_bytes = head_ - tail_;
  s.resident_bytes = s.used_bytes - stats_.dead_bytes;
  s.committed_bytes = committed_page_count_ * page_size_;
  s.capacity = capacity_;
  if (cold_tier_ != nullptr) {
    s.spilled_cells = cold_tier_->spilled_cells();
    s.spilled_bytes = cold_tier_->spilled_bytes();
    const ColdTier::Stats cold = cold_tier_->stats();
    s.cold_bytes_written = cold.bytes_spilled;
    s.cold_bytes_read = cold.bytes_faulted;
    s.live_cells += s.spilled_cells;
  }
  // Lock-contention counters live outside stats_ as relaxed atomics so the
  // hot paths can bump them without owning the trunk lock exclusively.
  s.shared_reads = shared_reads_.load(std::memory_order_relaxed);
  s.read_lock_contended = read_lock_contended_.load(std::memory_order_relaxed);
  s.write_lock_contended =
      write_lock_contended_.load(std::memory_order_relaxed);
  s.cell_lock_contended = cell_lock_contended_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t MemoryTrunk::cell_count() const {
  auto lock = ReadLock();
  std::uint64_t count = index_.size();
  if (cold_tier_ != nullptr) count += cold_tier_->spilled_cells();
  return count;
}

std::vector<CellId> MemoryTrunk::CellIds() const {
  auto lock = ReadLock();
  std::vector<CellId> ids;
  ids.reserve(index_.size());
  index_.ForEach([&](CellId id, std::uint64_t) { ids.push_back(id); });
  if (cold_tier_ != nullptr && cold_tier_->spilled_cells() > 0) {
    const std::vector<CellId> cold = cold_tier_->CellIds();
    ids.insert(ids.end(), cold.begin(), cold.end());
  }
  // Sorted so enumeration order is independent of which cells happen to be
  // spilled (and of index insertion history). Compute engines iterate these
  // ids and accumulate doubles; a residency-dependent order would make
  // results bitwise-irreproducible across memory configurations.
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status MemoryTrunk::Serialize(std::string* out) const {
  auto lock = ReadLock();
  BinaryWriter writer;
  writer.PutU64(kTrunkImageMagic);
  writer.PutU32(2);
  const std::uint64_t spilled =
      cold_tier_ != nullptr ? cold_tier_->spilled_cells() : 0;
  writer.PutU64(index_.size() + spilled);
  index_.ForEach([&](CellId id, std::uint64_t offset) {
    const EntryHeader* hdr = HeaderAt(offset);
    writer.PutU64(id);
    writer.PutU8(static_cast<std::uint8_t>(FormatOf(hdr)));
    writer.PutBytes(StoredAt(offset));
  });
  if (spilled > 0) {
    // Read the cold pages back so the image is self-contained: snapshots,
    // replica ships and migrations need no cold-tier state to restore.
    Status s = cold_tier_->ForEachCell(
        [&](CellId id, const ColdTier::CellMeta& meta, Slice stored) {
          writer.PutU64(id);
          writer.PutU8(meta.format);
          writer.PutBytes(stored);
        });
    if (!s.ok()) return s;
  }
  *out = writer.Release();
  return Status::OK();
}

Status MemoryTrunk::Deserialize(Slice data, const Options& options,
                                std::unique_ptr<MemoryTrunk>* out) {
  std::unique_ptr<MemoryTrunk> trunk;
  Status s = Create(options, &trunk);
  if (!s.ok()) return s;
  BinaryReader reader(data);
  std::uint64_t first = 0;
  if (!reader.GetU64(&first)) return Status::Corruption("trunk image header");
  if (first != kTrunkImageMagic) {
    // Version-1 image: `first` is the cell count; every payload is raw.
    // AddCell re-encodes under the target trunk's own options.
    for (std::uint64_t i = 0; i < first; ++i) {
      CellId id = 0;
      Slice payload;
      if (!reader.GetU64(&id) || !reader.GetBytes(&payload)) {
        return Status::Corruption("trunk image entry");
      }
      s = trunk->AddCell(id, payload);
      if (!s.ok()) return s;
    }
    *out = std::move(trunk);
    return Status::OK();
  }
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!reader.GetU32(&version) || version != 2 || !reader.GetU64(&count)) {
    return Status::Corruption("trunk image version");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    CellId id = 0;
    std::uint8_t format = 0;
    Slice stored;
    if (!reader.GetU64(&id) || !reader.GetU8(&format) ||
        !reader.GetBytes(&stored) ||
        format > static_cast<std::uint8_t>(CellFormat::kAdjDelta)) {
      return Status::Corruption("trunk image entry");
    }
    auto lock = trunk->WriteLock();
    if (trunk->index_.Find(id) != TrunkIndex::kNoOffset) {
      return Status::Corruption("trunk image duplicate cell");
    }
    s = trunk->InstallStoredLocked(id, static_cast<CellFormat>(format),
                                   stored);
    if (!s.ok()) return s;
    trunk->MaybeEnforceBudgetLocked();
  }
  *out = std::move(trunk);
  return Status::OK();
}

}  // namespace trinity::storage
