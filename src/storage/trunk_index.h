#ifndef TRINITY_STORAGE_TRUNK_INDEX_H_
#define TRINITY_STORAGE_TRUNK_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace trinity::storage {

/// Per-trunk hash table mapping a cell id to the logical offset of its entry
/// inside the trunk (paper §3: "Each memory trunk is associated with a hash
/// table. We hash the 64-bit key again to find the offset and size of the
/// key-value pair"). Open addressing with linear probing; grows at 70% load.
///
/// Not internally synchronized — the owning MemoryTrunk serializes access.
class TrunkIndex {
 public:
  static constexpr std::uint64_t kNoOffset = ~static_cast<std::uint64_t>(0);

  explicit TrunkIndex(std::size_t initial_capacity = 64);

  TrunkIndex(const TrunkIndex&) = delete;
  TrunkIndex& operator=(const TrunkIndex&) = delete;
  TrunkIndex(TrunkIndex&&) = default;
  TrunkIndex& operator=(TrunkIndex&&) = default;

  /// Returns the offset for `id`, or kNoOffset if absent.
  std::uint64_t Find(CellId id) const;

  /// Inserts or updates the mapping. Returns true if a new key was added.
  bool Upsert(CellId id, std::uint64_t offset);

  /// Removes the mapping. Returns true if the key was present.
  bool Erase(CellId id);

  std::size_t size() const { return size_; }
  std::size_t bucket_count() const { return slots_.size(); }

  /// Invokes fn(id, offset) for every live entry. Mutation during iteration
  /// is not allowed.
  void ForEach(const std::function<void(CellId, std::uint64_t)>& fn) const;

  /// Approximate heap bytes used by the table (for memory accounting).
  std::size_t MemoryBytes() const { return slots_.size() * sizeof(Slot); }

 private:
  struct Slot {
    CellId id = 0;
    std::uint64_t offset = kNoOffset;
    enum class State : std::uint8_t { kEmpty, kFull, kTombstone };
    State state = State::kEmpty;
  };

  std::size_t Probe(CellId id) const;
  void Grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace trinity::storage

#endif  // TRINITY_STORAGE_TRUNK_INDEX_H_
