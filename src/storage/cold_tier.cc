#include "storage/cold_tier.h"

#include <cstring>

namespace trinity::storage {

namespace {

constexpr std::uint32_t kPageMagic = 0x434f4c44u;  // "COLD"

template <typename T>
void AppendPod(std::string* dst, T v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(const char** p, const char* end, T* v) {
  if (static_cast<std::size_t>(end - *p) < sizeof(T)) return false;
  std::memcpy(v, *p, sizeof(T));
  *p += sizeof(T);
  return true;
}

}  // namespace

Status ColdTier::ParsePage(
    Slice page,
    const std::function<void(CellId, std::uint8_t, std::uint32_t, Slice)>&
        fn) {
  const char* p = page.data();
  const char* end = p + page.size();
  std::uint32_t magic = 0, count = 0;
  if (!ReadPod(&p, end, &magic) || magic != kPageMagic ||
      !ReadPod(&p, end, &count)) {
    return Status::Corruption("cold tier: bad page header");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    CellId id = 0;
    std::uint8_t format = 0;
    std::uint32_t raw_size = 0, len = 0;
    if (!ReadPod(&p, end, &id) || !ReadPod(&p, end, &format) ||
        !ReadPod(&p, end, &raw_size) || !ReadPod(&p, end, &len) ||
        static_cast<std::size_t>(end - p) < len) {
      return Status::Corruption("cold tier: truncated page record");
    }
    fn(id, format, raw_size, Slice(p, len));
    p += len;
  }
  return Status::OK();
}

Status ColdTier::WritePageLocked(const SpillEntry* entries,
                                 std::size_t count) {
  std::string page;
  AppendPod(&page, kPageMagic);
  AppendPod(&page, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const SpillEntry& e = entries[i];
    AppendPod(&page, e.id);
    AppendPod(&page, e.format);
    AppendPod(&page, e.raw_size);
    AppendPod(&page, static_cast<std::uint32_t>(e.stored.size()));
    page.append(e.stored.data(), e.stored.size());
  }

  const std::uint64_t page_no = next_page_;
  Status s = options_.tfs->WriteFile(PagePath(page_no), Slice(page));
  if (!s.ok()) return s;
  // Page is durable: now (and only now) install the mappings.
  ++next_page_;
  pages_[page_no].live_cells = static_cast<std::uint32_t>(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SpillEntry& e = entries[i];
    CellMeta& meta = table_[e.id];
    meta.page = page_no;
    meta.stored_size = static_cast<std::uint32_t>(e.stored.size());
    meta.raw_size = e.raw_size;
    meta.format = e.format;
    stats_.bytes_spilled += e.stored.size();
    spilled_bytes_.fetch_add(e.stored.size(), std::memory_order_relaxed);
  }
  stats_.pages_written += 1;
  stats_.cells_spilled += count;
  spilled_cells_.fetch_add(count, std::memory_order_relaxed);
  return Status::OK();
}

Status ColdTier::Spill(const std::vector<SpillEntry>& entries) {
  if (entries.empty()) return Status::OK();
  if (options_.tfs == nullptr) {
    return Status::InvalidArgument("cold tier: no backing tfs");
  }
  std::lock_guard<std::mutex> guard(mu_);
  // Callers never spill a cell that is already cold (the trunk faults in
  // before mutating), so every entry here creates a fresh mapping.
  std::size_t begin = 0;
  std::uint64_t chunk_bytes = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    chunk_bytes += entries[i].stored.size() + 24;
    const bool last = i + 1 == entries.size();
    if (chunk_bytes >= options_.page_payload_bytes || last) {
      Status s = WritePageLocked(entries.data() + begin, i + 1 - begin);
      // On failure earlier chunks stay installed; the caller rolls those
      // mappings back with Drop() while every victim is still resident
      // (see MemoryTrunk::SpillColdLocked), so no cell is ever lost.
      if (!s.ok()) return s;
      begin = i + 1;
      chunk_bytes = 0;
    }
  }
  return Status::OK();
}

bool ColdTier::Contains(CellId id) const {
  if (spilled_cells_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> guard(mu_);
  return table_.count(id) != 0;
}

bool ColdTier::Lookup(CellId id, CellMeta* meta) const {
  if (spilled_cells_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> guard(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return false;
  if (meta != nullptr) *meta = it->second;
  return true;
}

Status ColdTier::ReadCell(CellId id, std::string* stored, CellMeta* meta) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return Status::NotFound("cell not in cold tier");
  std::string page;
  Status s = options_.tfs->ReadFile(PagePath(it->second.page), &page);
  if (!s.ok()) return s;
  stats_.pages_read += 1;

  bool found = false;
  s = ParsePage(Slice(page),
                [&](CellId cid, std::uint8_t, std::uint32_t, Slice bytes) {
                  if (cid == id) {
                    stored->assign(bytes.data(), bytes.size());
                    found = true;
                  }
                });
  if (!s.ok()) return s;
  if (!found) return Status::Corruption("cold tier: cell missing from page");
  if (meta != nullptr) *meta = it->second;
  stats_.cells_faulted += 1;
  stats_.bytes_faulted += stored->size();
  return Status::OK();
}

void ColdTier::Drop(CellId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return;
  const std::uint64_t page = it->second.page;
  spilled_bytes_.fetch_sub(it->second.stored_size, std::memory_order_relaxed);
  spilled_cells_.fetch_sub(1, std::memory_order_relaxed);
  table_.erase(it);
  auto pit = pages_.find(page);
  if (pit != pages_.end() && --pit->second.live_cells == 0) {
    (void)options_.tfs->DeleteFile(PagePath(page));
    pages_.erase(pit);
    stats_.pages_deleted += 1;
  }
}

Status ColdTier::ForEachCell(
    const std::function<void(CellId, const CellMeta&, Slice)>& fn) {
  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& [page_no, info] : pages_) {
    (void)info;
    std::string page;
    Status s = options_.tfs->ReadFile(PagePath(page_no), &page);
    if (!s.ok()) return s;
    stats_.pages_read += 1;
    s = ParsePage(
        Slice(page),
        [&](CellId id, std::uint8_t, std::uint32_t, Slice bytes) {
          // Records for cells re-admitted or removed since the page was
          // written are dead space; serve only still-mapped ones that
          // still point at this page.
          auto it = table_.find(id);
          if (it != table_.end() && it->second.page == page_no) {
            fn(id, it->second, bytes);
          }
        });
    if (!s.ok()) return s;
  }
  return Status::OK();
}

std::vector<CellId> ColdTier::CellIds() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<CellId> ids;
  ids.reserve(table_.size());
  for (const auto& [id, meta] : table_) {
    (void)meta;
    ids.push_back(id);
  }
  return ids;
}

void ColdTier::Purge() {
  std::lock_guard<std::mutex> guard(mu_);
  if (options_.tfs != nullptr) {
    for (const auto& [page_no, info] : pages_) {
      (void)info;
      (void)options_.tfs->DeleteFile(PagePath(page_no));
      stats_.pages_deleted += 1;
    }
  }
  pages_.clear();
  table_.clear();
  spilled_cells_.store(0, std::memory_order_relaxed);
  spilled_bytes_.store(0, std::memory_order_relaxed);
}

ColdTier::Stats ColdTier::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

}  // namespace trinity::storage
