#include "storage/trunk_index.h"

#include "common/hash.h"
#include "common/logging.h"

namespace trinity::storage {

namespace {
std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TrunkIndex::TrunkIndex(std::size_t initial_capacity) {
  slots_.resize(NextPow2(initial_capacity < 8 ? 8 : initial_capacity));
}

std::size_t TrunkIndex::Probe(CellId id) const {
  return static_cast<std::size_t>(InTrunkHash(id)) & (slots_.size() - 1);
}

std::uint64_t TrunkIndex::Find(CellId id) const {
  std::size_t i = Probe(id);
  for (std::size_t n = 0; n < slots_.size(); ++n) {
    const Slot& slot = slots_[i];
    if (slot.state == Slot::State::kEmpty) return kNoOffset;
    if (slot.state == Slot::State::kFull && slot.id == id) return slot.offset;
    i = (i + 1) & (slots_.size() - 1);
  }
  return kNoOffset;
}

bool TrunkIndex::Upsert(CellId id, std::uint64_t offset) {
  if ((size_ + tombstones_ + 1) * 10 >= slots_.size() * 7) Grow();
  std::size_t i = Probe(id);
  std::size_t first_tombstone = slots_.size();
  for (;;) {
    Slot& slot = slots_[i];
    if (slot.state == Slot::State::kFull && slot.id == id) {
      slot.offset = offset;
      return false;
    }
    if (slot.state == Slot::State::kTombstone &&
        first_tombstone == slots_.size()) {
      first_tombstone = i;
    }
    if (slot.state == Slot::State::kEmpty) {
      std::size_t target = first_tombstone != slots_.size() ? first_tombstone : i;
      Slot& dest = slots_[target];
      if (dest.state == Slot::State::kTombstone) --tombstones_;
      dest.id = id;
      dest.offset = offset;
      dest.state = Slot::State::kFull;
      ++size_;
      return true;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

bool TrunkIndex::Erase(CellId id) {
  std::size_t i = Probe(id);
  for (std::size_t n = 0; n < slots_.size(); ++n) {
    Slot& slot = slots_[i];
    if (slot.state == Slot::State::kEmpty) return false;
    if (slot.state == Slot::State::kFull && slot.id == id) {
      slot.state = Slot::State::kTombstone;
      --size_;
      ++tombstones_;
      return true;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
  return false;
}

void TrunkIndex::ForEach(
    const std::function<void(CellId, std::uint64_t)>& fn) const {
  for (const Slot& slot : slots_) {
    if (slot.state == Slot::State::kFull) fn(slot.id, slot.offset);
  }
}

void TrunkIndex::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot());
  size_ = 0;
  tombstones_ = 0;
  for (const Slot& slot : old) {
    if (slot.state == Slot::State::kFull) Upsert(slot.id, slot.offset);
  }
}

}  // namespace trinity::storage
