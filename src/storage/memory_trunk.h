#ifndef TRINITY_STORAGE_MEMORY_TRUNK_H_
#define TRINITY_STORAGE_MEMORY_TRUNK_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/slice.h"
#include "common/spinlock.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/cell_codec.h"
#include "storage/cold_tier.h"
#include "storage/trunk_index.h"

namespace trinity::storage {

namespace internal {
#ifndef NDEBUG
/// Debug-only tracking of the striped cell locks held by the current thread.
/// Two cells can hash to the same of the 256 stripes, so a thread that holds
/// a ConstAccessor and then acquires the cell lock of *another* cell on the
/// same stripe self-deadlocks. Release paths and checked acquisition paths
/// keep this list in sync so the deadlock is caught as an assertion instead
/// of a hang (see docs/concurrent_reads.md).
inline thread_local std::vector<const void*> held_cell_stripes;

inline bool StripeHeldByThisThread(const void* stripe) {
  return std::find(held_cell_stripes.begin(), held_cell_stripes.end(),
                   stripe) != held_cell_stripes.end();
}
inline void NoteStripeAcquired(const void* stripe) {
  held_cell_stripes.push_back(stripe);
}
inline void NoteStripeReleased(const void* stripe) {
  auto it = std::find(held_cell_stripes.rbegin(), held_cell_stripes.rend(),
                      stripe);
  if (it != held_cell_stripes.rend()) {
    held_cell_stripes.erase(std::next(it).base());
  }
}
#endif  // NDEBUG
}  // namespace internal

/// A memory trunk: one shard of the memory cloud's storage, implementing the
/// paper's circular memory management (§6.1).
///
/// The trunk reserves a fixed virtual address range up front (mmap with
/// PROT_NONE) and commits pages on demand as the append head advances —
/// mirroring the paper's reserve/commit scheme on Windows. Key-value pairs
/// are appended log-style at `append head`; the live region is
/// [committed tail, append head) in logical (monotonically increasing)
/// offsets, mapped onto the physical range modulo the trunk capacity, so the
/// heads perform an "endless circular movement" through the reservation.
///
/// Deleting or relocating a pair leaves a dead entry; Defragment() is the
/// compaction pass that re-appends live pairs at the head, releases the freed
/// pages at the tail back to the OS, and trims unused *short-lived
/// reservations* — the extra capacity granted on expansion so that growing
/// cells (e.g. adjacency lists under edge inserts) do not relocate on every
/// append. A reservation lives only until the next defragmentation pass,
/// exactly as in the paper.
///
/// Memory hierarchy (docs/memory_hierarchy.md): each live entry carries a
/// CellFormat tag in the spare top bits of its header's capacity field.
/// With Options::compress_adjacency set, node cells are stored delta-varint
/// encoded (CellCodec) and decoded transparently on read. With a
/// memory_budget plus a cold TFS configured, the defragment pass doubles as
/// the clock eviction pass: cold cells (second-chance ref bits cleared) are
/// spilled to ColdTier pages, and any access to a spilled cell faults it
/// back in under the exclusive lock. The trunk index covers resident cells
/// only; a miss consults the cold tier's page table before reporting
/// NotFound.
///
/// Concurrency: a trunk-level reader/writer lock protects the index and the
/// ring metadata. Read operations (GetCell / Access / Contains / GetCellSize
/// and the const scans) take the shared side, so concurrent readers scale
/// with threads; mutators, Defragment() and fault-ins take the exclusive
/// side. Each cell additionally has a (striped) spin lock that zero-copy
/// accessors and the defragmenter acquire, which is what pins a cell's
/// physical location while it is being accessed (§3): an accessor keeps its
/// stripe locked after the shared lock is dropped, and defrag — which runs
/// exclusively — TryLocks each cell and skips pinned ones (eviction does the
/// same, so a pinned cell can never be spilled). The per-cell spin locks are
/// striped 256 ways, so two distinct cells can share a stripe; acquiring a
/// cell lock while this thread already holds an accessor on the same stripe
/// would self-deadlock and is rejected by a debug assertion (see
/// docs/concurrent_reads.md).
class MemoryTrunk {
 public:
  struct Options {
    /// Reserved virtual size in bytes (the paper reserves 2 GB; scale down
    /// for tests). Rounded up to a page multiple.
    std::uint64_t capacity = 64ull << 20;
    /// Extra capacity granted on relocation-for-expansion, as a percentage
    /// of the new size (the short-lived reservation).
    int reservation_pct = 50;
    /// Defragment automatically inside an allocation when the dead-byte
    /// ratio exceeds this fraction and space is tight.
    double auto_defrag_dead_ratio = 0.25;

    /// Store adjacency-list (node) cells delta-varint encoded when that is
    /// strictly smaller; reads decode transparently. Non-node or unsorted
    /// payloads fall back to raw storage per cell.
    bool compress_adjacency = false;
    /// Resident-byte budget (ring bytes, head - tail). 0 disables the cold
    /// tier: the trunk is fully resident, exactly the pre-hierarchy
    /// behavior. When exceeded, the defrag pass spills clock-cold cells to
    /// `cold_tfs` until usage drops below ~7/8 of the budget. Must be well
    /// below `capacity` so eviction can actually free ring space.
    std::uint64_t memory_budget = 0;
    /// Backing store for spilled pages; required when memory_budget > 0.
    tfs::Tfs* cold_tfs = nullptr;
    /// TFS path prefix for this trunk's cold pages. A process-wide instance
    /// counter is appended so trunk reincarnations and replicas never
    /// collide on page files.
    std::string cold_prefix = "cold";
    /// Target payload bytes per cold page (one sequential read per fault).
    std::uint64_t cold_page_bytes = 256 << 10;
  };

  struct Stats {
    std::uint64_t live_cells = 0;  ///< Live cells (resident + spilled).
    std::uint64_t live_bytes = 0;  ///< Stored payload bytes resident in RAM.
    std::uint64_t reserved_slack = 0;    ///< Reservation bytes not yet used.
    std::uint64_t dead_bytes = 0;        ///< Bytes held by dead entries.
    std::uint64_t used_bytes = 0;        ///< head - tail.
    std::uint64_t resident_bytes = 0;    ///< Live entry spans in RAM
                                         ///< (headers + payload + slack).
    std::uint64_t committed_bytes = 0;   ///< Pages currently committed.
    std::uint64_t capacity = 0;
    std::uint64_t defrag_passes = 0;
    std::uint64_t cells_moved = 0;
    std::uint64_t expansions_in_place = 0;
    std::uint64_t expansions_relocated = 0;
    /// Memory-hierarchy meters:
    std::uint64_t compressed_cells = 0;  ///< Resident cells stored kAdjDelta.
    std::uint64_t compressed_bytes = 0;  ///< Stored bytes of those cells.
    std::uint64_t spilled_cells = 0;     ///< Cells currently in the cold tier.
    std::uint64_t spilled_bytes = 0;     ///< Stored bytes currently spilled.
    std::uint64_t cells_evicted = 0;     ///< Cumulative spills.
    std::uint64_t cells_faulted = 0;     ///< Cumulative fault-ins.
    std::uint64_t cold_bytes_written = 0;  ///< Cumulative bytes spilled out.
    std::uint64_t cold_bytes_read = 0;     ///< Cumulative bytes faulted in.
    /// Read-path observability (relaxed-atomic internally; snapshot here):
    std::uint64_t shared_reads = 0;  ///< Shared-lock acquisitions (read ops).
    std::uint64_t read_lock_contended = 0;   ///< Shared acquisitions blocked.
    std::uint64_t write_lock_contended = 0;  ///< Exclusive acquis. blocked.
    std::uint64_t cell_lock_contended = 0;   ///< Stripe locks not free on try.
  };

  /// Creates a trunk. Fails with OutOfMemory if the reservation cannot be
  /// made.
  static Status Create(const Options& options,
                       std::unique_ptr<MemoryTrunk>* out);

  ~MemoryTrunk();
  MemoryTrunk(const MemoryTrunk&) = delete;
  MemoryTrunk& operator=(const MemoryTrunk&) = delete;

  /// Adds a new cell. Fails with AlreadyExists if the id is present.
  Status AddCell(CellId id, Slice payload);

  /// Adds or replaces a cell. In-place when the existing entry has room.
  Status PutCell(CellId id, Slice payload);

  /// Copies the (decoded) cell payload into *out. Faults a spilled cell
  /// back in.
  Status GetCell(CellId id, std::string* out) const;

  bool Contains(CellId id) const;

  /// Logical (decoded) payload size. Answered from the header varint or the
  /// cold page table — never reads cold storage.
  Status GetCellSize(CellId id, std::uint64_t* size) const;

  /// Removes a cell; its bytes are reclaimed by the next defrag pass.
  Status RemoveCell(CellId id);

  /// Appends bytes to an existing cell (the hot path for growing adjacency
  /// lists). Uses the reservation if available; relocates with a fresh
  /// reservation otherwise. A compressed cell is materialized to raw first
  /// (defrag re-compresses it later); a spilled cell is faulted in.
  Status AppendToCell(CellId id, Slice suffix);

  /// Overwrites `bytes` at `offset` within the (decoded) cell payload
  /// (in-place field update used by cell accessors). offset+len must lie
  /// inside the payload.
  Status WriteAt(CellId id, std::uint64_t offset, Slice bytes);

  /// Read access pinning the cell. For raw resident cells this is zero-copy:
  /// the accessor holds the cell's spin lock, pinning the cell against
  /// defragmentation (and eviction) until destroyed. Compressed cells are
  /// materialized into a buffer owned by the accessor instead — no lock is
  /// held and data() points at the decoded copy. Do not call mutating trunk
  /// methods for the same *lock stripe* (any cell may share the stripe)
  /// while holding a pinning accessor on the same thread — debug builds
  /// assert on such re-entrant stripe acquisition. Lock-free reads
  /// (GetCell / Contains / GetCellSize) stay safe while holding an accessor.
  class ConstAccessor {
   public:
    ConstAccessor() = default;
    ~ConstAccessor() { Release(); }
    ConstAccessor(ConstAccessor&& other) noexcept { *this = std::move(other); }
    ConstAccessor& operator=(ConstAccessor&& other) noexcept {
      Release();
      lock_ = other.lock_;
      data_ = other.data_;
      owned_ = std::move(other.owned_);
      other.lock_ = nullptr;
      other.data_ = Slice();
      return *this;
    }
    ConstAccessor(const ConstAccessor&) = delete;
    ConstAccessor& operator=(const ConstAccessor&) = delete;

    Slice data() const { return data_; }
    bool valid() const { return lock_ != nullptr || owned_ != nullptr; }

   private:
    friend class MemoryTrunk;
    void Release() {
      if (lock_ != nullptr) {
#ifndef NDEBUG
        internal::NoteStripeReleased(lock_);
#endif
        lock_->Unlock();
        lock_ = nullptr;
      }
      owned_.reset();
      data_ = Slice();
    }
    SpinLock* lock_ = nullptr;
    Slice data_;
    /// Decoded payload for compressed cells (materialize-on-pin).
    std::unique_ptr<std::string> owned_;
  };

  Status Access(CellId id, ConstAccessor* accessor) const;

  /// One full compaction pass (doubles as the eviction pass when over
  /// budget). Returns the number of bytes reclaimed.
  std::uint64_t Defragment();

  Stats stats() const;

  /// Lock-free reads of the contention counters. Unlike stats() these never
  /// touch the trunk lock, so they are safe to poll from a thread that holds
  /// a ConstAccessor even while a writer owns the exclusive side (stats()
  /// would deadlock there: the writer spins on the accessor's stripe while
  /// holding the lock stats() needs).
  std::uint64_t shared_reads() const noexcept {
    return shared_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t read_lock_contended() const noexcept {
    return read_lock_contended_.load(std::memory_order_relaxed);
  }
  std::uint64_t write_lock_contended() const noexcept {
    return write_lock_contended_.load(std::memory_order_relaxed);
  }
  std::uint64_t cell_lock_contended() const noexcept {
    return cell_lock_contended_.load(std::memory_order_relaxed);
  }

  /// Number of live cells (resident + spilled).
  std::uint64_t cell_count() const;

  /// Collects the ids of all live cells, spilled included, in sorted order
  /// — deterministic regardless of residency, so compute engines that
  /// accumulate floating point in enumeration order stay bitwise
  /// reproducible across memory configurations. Used by compute engines to
  /// enumerate the vertices hosted on a machine.
  std::vector<CellId> CellIds() const;

  /// Serializes all live cells for persistence to TFS. Spilled cells are
  /// read back from their cold pages, so the image is self-contained —
  /// recovery and replica installation need no cold-tier state. Cells are
  /// written in stored form with their format tag (image version 2; version
  /// 1 images remain readable).
  Status Serialize(std::string* out) const;

  /// Rebuilds a trunk from a Serialize() blob.
  static Status Deserialize(Slice data, const Options& options,
                            std::unique_ptr<MemoryTrunk>* out);

 private:
  // On-media entry layout: header followed by `capacity` payload bytes,
  // padded to 8-byte alignment. `id` is kDeadCell for reclaimable entries
  // and kPadCell for end-of-ring padding. The top two bits of `capacity`
  // hold the CellFormat for live entries (cells are capped at 1 GB), so the
  // header did not grow; pad entries use the full 32 bits (a pad can exceed
  // 1 GB on a large trunk) and dead entries have the bits cleared.
  struct EntryHeader {
    CellId id;
    std::uint32_t size;
    std::uint32_t capacity;
  };
  static_assert(sizeof(EntryHeader) == 16, "entry header must be 16 bytes");

  static constexpr CellId kPadCell = ~static_cast<CellId>(0);
  static constexpr CellId kDeadCell = ~static_cast<CellId>(0) - 1;
  static constexpr std::uint64_t kHeaderSize = sizeof(EntryHeader);
  static constexpr int kLockStripes = 256;
  static constexpr int kRefStripes = 4096;
  static constexpr std::uint32_t kCapacityMask = (1u << 30) - 1;

  static std::uint32_t CapOf(const EntryHeader* hdr) {
    return hdr->capacity & kCapacityMask;
  }
  static CellFormat FormatOf(const EntryHeader* hdr) {
    return static_cast<CellFormat>(hdr->capacity >> 30);
  }
  static void SetCapFormat(EntryHeader* hdr, std::uint64_t capacity,
                           CellFormat format) {
    hdr->capacity = static_cast<std::uint32_t>(capacity) |
                    (static_cast<std::uint32_t>(format) << 30);
  }

  explicit MemoryTrunk(const Options& options);
  Status Init();

  static std::uint64_t RoundUp8(std::uint64_t n) { return (n + 7) & ~7ull; }
  std::uint64_t EntrySpan(std::uint64_t capacity) const {
    return kHeaderSize + RoundUp8(capacity);
  }

  char* PhysPtr(std::uint64_t logical) const {
    return base_ + (logical % capacity_);
  }
  EntryHeader* HeaderAt(std::uint64_t logical) const {
    return reinterpret_cast<EntryHeader*>(PhysPtr(logical));
  }
  Slice StoredAt(std::uint64_t logical) const {
    return Slice(PhysPtr(logical) + kHeaderSize, HeaderAt(logical)->size);
  }
  SpinLock& LockFor(CellId id) const;

  /// Second-chance bit maintenance. Touch is called by the read paths under
  /// the shared lock (relaxed store — clock accuracy is best-effort and
  /// stripe collisions only make eviction more conservative); TestClear is
  /// the clock hand, called under the exclusive lock.
  void TouchRefBit(CellId id) const {
    ref_bits_[InTrunkHash(id) % kRefStripes].store(
        1, std::memory_order_relaxed);
  }
  bool TestClearRefBit(CellId id) {
    return ref_bits_[InTrunkHash(id) % kRefStripes].exchange(
               0, std::memory_order_relaxed) != 0;
  }

  /// Contention-counted lock acquisition. ReadLock/WriteLock wrap mu_;
  /// AcquireCellLock takes the cell's stripe spin lock with the debug
  /// re-entrancy assertion (the returned lock is released either by
  /// ReleaseCellLock or by handing it to a ConstAccessor).
  std::shared_lock<std::shared_mutex> ReadLock() const;
  std::unique_lock<std::shared_mutex> WriteLock() const;
  SpinLock* AcquireCellLock(CellId id) const;
  void ReleaseCellLock(SpinLock* lock) const;

  /// RAII stripe-lock holder for mutators.
  class CellLockGuard {
   public:
    CellLockGuard(const MemoryTrunk* trunk, CellId id)
        : trunk_(trunk), lock_(trunk->AcquireCellLock(id)) {}
    ~CellLockGuard() { trunk_->ReleaseCellLock(lock_); }
    CellLockGuard(const CellLockGuard&) = delete;
    CellLockGuard& operator=(const CellLockGuard&) = delete;

   private:
    const MemoryTrunk* trunk_;
    SpinLock* lock_;
  };

  /// Reserves `span` contiguous physical bytes at the head, inserting ring
  /// padding and triggering auto-defrag as needed. On success *logical is
  /// the entry's logical offset. Caller holds mu_.
  Status AllocateLocked(std::uint64_t span, std::uint64_t* logical);
  Status EnsureCommitted(std::uint64_t phys_begin, std::uint64_t length);
  void DecommitDeadPagesLocked();
  Status AppendEntryLocked(CellId id, Slice payload, std::uint64_t capacity,
                           std::uint64_t* logical,
                           CellFormat format = CellFormat::kRaw);
  std::uint64_t DefragmentLocked();

  /// Decodes (or copies) the stored payload at `logical` into *out. Caller
  /// holds mu_ (either side).
  Status ReadPayloadLocked(std::uint64_t logical, std::string* out) const;

  /// Fills `accessor` for the resident cell at `offset`: zero-copy pin for
  /// raw cells, materialized decode for compressed ones. Caller holds mu_.
  Status PinLocked(CellId id, std::uint64_t offset,
                   ConstAccessor* accessor) const;

  /// Installs a cell in its already-stored form (fault-in, image v2 load).
  /// Caller holds mu_ exclusively; id must not be resident.
  Status InstallStoredLocked(CellId id, CellFormat format, Slice stored);

  /// Re-admits a spilled cell from the cold tier (enforcing the budget
  /// first, so a read-only fault storm cannot overrun the ring). Caller
  /// holds mu_ exclusively; id must not be resident.
  Status FaultInLocked(CellId id);

  /// Clock eviction: spills cold, unpinned cells until ring usage drops to
  /// `target` bytes or every candidate had its second chance. Caller holds
  /// mu_ exclusively.
  void SpillColdLocked(std::uint64_t target);

  /// Runs a defrag/eviction pass when the ring exceeds the memory budget.
  void MaybeEnforceBudgetLocked();

  const Options options_;
  std::uint64_t capacity_ = 0;  ///< Page-rounded reserved bytes.
  std::uint64_t page_size_ = 0;
  char* base_ = nullptr;

  mutable std::shared_mutex mu_;
  TrunkIndex index_;
  std::uint64_t head_ = 0;  ///< Logical append head.
  std::uint64_t tail_ = 0;  ///< Logical committed tail.
  std::vector<bool> committed_pages_;
  std::uint64_t committed_page_count_ = 0;
  bool in_defrag_ = false;  ///< Guards against recursive auto-defrag.
  mutable Stats stats_;
  mutable std::unique_ptr<SpinLock[]> locks_;
  std::unique_ptr<ColdTier> cold_tier_;  ///< Null when fully resident.
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> ref_bits_;
  // Lock-contention counters live outside stats_ so the read path can bump
  // them without exclusive ownership; stats() folds them into the snapshot.
  mutable std::atomic<std::uint64_t> shared_reads_{0};
  mutable std::atomic<std::uint64_t> read_lock_contended_{0};
  mutable std::atomic<std::uint64_t> write_lock_contended_{0};
  mutable std::atomic<std::uint64_t> cell_lock_contended_{0};
};

}  // namespace trinity::storage

#endif  // TRINITY_STORAGE_MEMORY_TRUNK_H_
