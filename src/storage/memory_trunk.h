#ifndef TRINITY_STORAGE_MEMORY_TRUNK_H_
#define TRINITY_STORAGE_MEMORY_TRUNK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/spinlock.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/trunk_index.h"

namespace trinity::storage {

/// A memory trunk: one shard of the memory cloud's storage, implementing the
/// paper's circular memory management (§6.1).
///
/// The trunk reserves a fixed virtual address range up front (mmap with
/// PROT_NONE) and commits pages on demand as the append head advances —
/// mirroring the paper's reserve/commit scheme on Windows. Key-value pairs
/// are appended log-style at `append head`; the live region is
/// [committed tail, append head) in logical (monotonically increasing)
/// offsets, mapped onto the physical range modulo the trunk capacity, so the
/// heads perform an "endless circular movement" through the reservation.
///
/// Deleting or relocating a pair leaves a dead entry; Defragment() is the
/// compaction pass that re-appends live pairs at the head, releases the freed
/// pages at the tail back to the OS, and trims unused *short-lived
/// reservations* — the extra capacity granted on expansion so that growing
/// cells (e.g. adjacency lists under edge inserts) do not relocate on every
/// append. A reservation lives only until the next defragmentation pass,
/// exactly as in the paper.
///
/// Concurrency: a trunk-level mutex serializes metadata operations; each cell
/// additionally has a (striped) spin lock that both readers and the
/// defragmenter acquire, which is what pins a cell's physical location while
/// it is being accessed (§3).
class MemoryTrunk {
 public:
  struct Options {
    /// Reserved virtual size in bytes (the paper reserves 2 GB; scale down
    /// for tests). Rounded up to a page multiple.
    std::uint64_t capacity = 64ull << 20;
    /// Extra capacity granted on relocation-for-expansion, as a percentage
    /// of the new size (the short-lived reservation).
    int reservation_pct = 50;
    /// Defragment automatically inside an allocation when the dead-byte
    /// ratio exceeds this fraction and space is tight.
    double auto_defrag_dead_ratio = 0.25;
  };

  struct Stats {
    std::uint64_t live_cells = 0;
    std::uint64_t live_bytes = 0;        ///< Payload bytes in live cells.
    std::uint64_t reserved_slack = 0;    ///< Reservation bytes not yet used.
    std::uint64_t dead_bytes = 0;        ///< Bytes held by dead entries.
    std::uint64_t used_bytes = 0;        ///< head - tail.
    std::uint64_t committed_bytes = 0;   ///< Pages currently committed.
    std::uint64_t capacity = 0;
    std::uint64_t defrag_passes = 0;
    std::uint64_t cells_moved = 0;
    std::uint64_t expansions_in_place = 0;
    std::uint64_t expansions_relocated = 0;
  };

  /// Creates a trunk. Fails with OutOfMemory if the reservation cannot be
  /// made.
  static Status Create(const Options& options,
                       std::unique_ptr<MemoryTrunk>* out);

  ~MemoryTrunk();
  MemoryTrunk(const MemoryTrunk&) = delete;
  MemoryTrunk& operator=(const MemoryTrunk&) = delete;

  /// Adds a new cell. Fails with AlreadyExists if the id is present.
  Status AddCell(CellId id, Slice payload);

  /// Adds or replaces a cell. In-place when the existing entry has room.
  Status PutCell(CellId id, Slice payload);

  /// Copies the cell payload into *out.
  Status GetCell(CellId id, std::string* out) const;

  bool Contains(CellId id) const;
  Status GetCellSize(CellId id, std::uint64_t* size) const;

  /// Removes a cell; its bytes are reclaimed by the next defrag pass.
  Status RemoveCell(CellId id);

  /// Appends bytes to an existing cell (the hot path for growing adjacency
  /// lists). Uses the reservation if available; relocates with a fresh
  /// reservation otherwise.
  Status AppendToCell(CellId id, Slice suffix);

  /// Overwrites `bytes` at `offset` within the cell payload (in-place field
  /// update used by cell accessors). offset+len must lie inside the payload.
  Status WriteAt(CellId id, std::uint64_t offset, Slice bytes);

  /// Zero-copy read access. The accessor holds the cell's spin lock, pinning
  /// the cell against defragmentation until destroyed. Do not call other
  /// trunk methods for the same cell while holding an accessor on the same
  /// thread.
  class ConstAccessor {
   public:
    ConstAccessor() = default;
    ~ConstAccessor() { Release(); }
    ConstAccessor(ConstAccessor&& other) noexcept { *this = std::move(other); }
    ConstAccessor& operator=(ConstAccessor&& other) noexcept {
      Release();
      lock_ = other.lock_;
      data_ = other.data_;
      other.lock_ = nullptr;
      other.data_ = Slice();
      return *this;
    }
    ConstAccessor(const ConstAccessor&) = delete;
    ConstAccessor& operator=(const ConstAccessor&) = delete;

    Slice data() const { return data_; }
    bool valid() const { return lock_ != nullptr; }

   private:
    friend class MemoryTrunk;
    void Release() {
      if (lock_ != nullptr) {
        lock_->Unlock();
        lock_ = nullptr;
      }
    }
    SpinLock* lock_ = nullptr;
    Slice data_;
  };

  Status Access(CellId id, ConstAccessor* accessor) const;

  /// One full compaction pass. Returns the number of bytes reclaimed.
  std::uint64_t Defragment();

  Stats stats() const;

  /// Number of live cells.
  std::uint64_t cell_count() const;

  /// Collects the ids of all live cells (order unspecified). Used by compute
  /// engines to enumerate the vertices hosted on a machine.
  std::vector<CellId> CellIds() const;

  /// Serializes all live cells (id + payload) for persistence to TFS.
  Status Serialize(std::string* out) const;

  /// Rebuilds a trunk from a Serialize() blob.
  static Status Deserialize(Slice data, const Options& options,
                            std::unique_ptr<MemoryTrunk>* out);

 private:
  // On-media entry layout: header followed by `capacity` payload bytes,
  // padded to 8-byte alignment. `id` is kDeadCell for reclaimable entries
  // and kPadCell for end-of-ring padding.
  struct EntryHeader {
    CellId id;
    std::uint32_t size;
    std::uint32_t capacity;
  };
  static_assert(sizeof(EntryHeader) == 16, "entry header must be 16 bytes");

  static constexpr CellId kPadCell = ~static_cast<CellId>(0);
  static constexpr CellId kDeadCell = ~static_cast<CellId>(0) - 1;
  static constexpr std::uint64_t kHeaderSize = sizeof(EntryHeader);
  static constexpr int kLockStripes = 256;

  explicit MemoryTrunk(const Options& options);
  Status Init();

  static std::uint64_t RoundUp8(std::uint64_t n) { return (n + 7) & ~7ull; }
  std::uint64_t EntrySpan(std::uint64_t capacity) const {
    return kHeaderSize + RoundUp8(capacity);
  }

  char* PhysPtr(std::uint64_t logical) const {
    return base_ + (logical % capacity_);
  }
  EntryHeader* HeaderAt(std::uint64_t logical) const {
    return reinterpret_cast<EntryHeader*>(PhysPtr(logical));
  }
  SpinLock& LockFor(CellId id) const;

  /// Reserves `span` contiguous physical bytes at the head, inserting ring
  /// padding and triggering auto-defrag as needed. On success *logical is
  /// the entry's logical offset. Caller holds mu_.
  Status AllocateLocked(std::uint64_t span, std::uint64_t* logical);
  Status EnsureCommitted(std::uint64_t phys_begin, std::uint64_t length);
  void DecommitDeadPagesLocked();
  Status AppendEntryLocked(CellId id, Slice payload, std::uint64_t capacity,
                           std::uint64_t* logical);
  std::uint64_t DefragmentLocked();

  const Options options_;
  std::uint64_t capacity_ = 0;  ///< Page-rounded reserved bytes.
  std::uint64_t page_size_ = 0;
  char* base_ = nullptr;

  mutable std::mutex mu_;
  TrunkIndex index_;
  std::uint64_t head_ = 0;  ///< Logical append head.
  std::uint64_t tail_ = 0;  ///< Logical committed tail.
  std::vector<bool> committed_pages_;
  std::uint64_t committed_page_count_ = 0;
  bool in_defrag_ = false;  ///< Guards against recursive auto-defrag.
  mutable Stats stats_;
  mutable std::unique_ptr<SpinLock[]> locks_;
};

}  // namespace trinity::storage

#endif  // TRINITY_STORAGE_MEMORY_TRUNK_H_
