#ifndef TRINITY_STORAGE_MEMORY_TRUNK_H_
#define TRINITY_STORAGE_MEMORY_TRUNK_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/spinlock.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/trunk_index.h"

namespace trinity::storage {

namespace internal {
#ifndef NDEBUG
/// Debug-only tracking of the striped cell locks held by the current thread.
/// Two cells can hash to the same of the 256 stripes, so a thread that holds
/// a ConstAccessor and then acquires the cell lock of *another* cell on the
/// same stripe self-deadlocks. Release paths and checked acquisition paths
/// keep this list in sync so the deadlock is caught as an assertion instead
/// of a hang (see docs/concurrent_reads.md).
inline thread_local std::vector<const void*> held_cell_stripes;

inline bool StripeHeldByThisThread(const void* stripe) {
  return std::find(held_cell_stripes.begin(), held_cell_stripes.end(),
                   stripe) != held_cell_stripes.end();
}
inline void NoteStripeAcquired(const void* stripe) {
  held_cell_stripes.push_back(stripe);
}
inline void NoteStripeReleased(const void* stripe) {
  auto it = std::find(held_cell_stripes.rbegin(), held_cell_stripes.rend(),
                      stripe);
  if (it != held_cell_stripes.rend()) {
    held_cell_stripes.erase(std::next(it).base());
  }
}
#endif  // NDEBUG
}  // namespace internal

/// A memory trunk: one shard of the memory cloud's storage, implementing the
/// paper's circular memory management (§6.1).
///
/// The trunk reserves a fixed virtual address range up front (mmap with
/// PROT_NONE) and commits pages on demand as the append head advances —
/// mirroring the paper's reserve/commit scheme on Windows. Key-value pairs
/// are appended log-style at `append head`; the live region is
/// [committed tail, append head) in logical (monotonically increasing)
/// offsets, mapped onto the physical range modulo the trunk capacity, so the
/// heads perform an "endless circular movement" through the reservation.
///
/// Deleting or relocating a pair leaves a dead entry; Defragment() is the
/// compaction pass that re-appends live pairs at the head, releases the freed
/// pages at the tail back to the OS, and trims unused *short-lived
/// reservations* — the extra capacity granted on expansion so that growing
/// cells (e.g. adjacency lists under edge inserts) do not relocate on every
/// append. A reservation lives only until the next defragmentation pass,
/// exactly as in the paper.
///
/// Concurrency: a trunk-level reader/writer lock protects the index and the
/// ring metadata. Read operations (GetCell / Access / Contains / GetCellSize
/// and the const scans) take the shared side, so concurrent readers scale
/// with threads; mutators and Defragment() take the exclusive side. Each
/// cell additionally has a (striped) spin lock that zero-copy accessors and
/// the defragmenter acquire, which is what pins a cell's physical location
/// while it is being accessed (§3): an accessor keeps its stripe locked
/// after the shared lock is dropped, and defrag — which runs exclusively —
/// TryLocks each cell and skips pinned ones. The per-cell spin locks are
/// striped 256 ways, so two distinct cells can share a stripe; acquiring a
/// cell lock while this thread already holds an accessor on the same stripe
/// would self-deadlock and is rejected by a debug assertion (see
/// docs/concurrent_reads.md).
class MemoryTrunk {
 public:
  struct Options {
    /// Reserved virtual size in bytes (the paper reserves 2 GB; scale down
    /// for tests). Rounded up to a page multiple.
    std::uint64_t capacity = 64ull << 20;
    /// Extra capacity granted on relocation-for-expansion, as a percentage
    /// of the new size (the short-lived reservation).
    int reservation_pct = 50;
    /// Defragment automatically inside an allocation when the dead-byte
    /// ratio exceeds this fraction and space is tight.
    double auto_defrag_dead_ratio = 0.25;
  };

  struct Stats {
    std::uint64_t live_cells = 0;
    std::uint64_t live_bytes = 0;        ///< Payload bytes in live cells.
    std::uint64_t reserved_slack = 0;    ///< Reservation bytes not yet used.
    std::uint64_t dead_bytes = 0;        ///< Bytes held by dead entries.
    std::uint64_t used_bytes = 0;        ///< head - tail.
    std::uint64_t committed_bytes = 0;   ///< Pages currently committed.
    std::uint64_t capacity = 0;
    std::uint64_t defrag_passes = 0;
    std::uint64_t cells_moved = 0;
    std::uint64_t expansions_in_place = 0;
    std::uint64_t expansions_relocated = 0;
    /// Read-path observability (relaxed-atomic internally; snapshot here):
    std::uint64_t shared_reads = 0;  ///< Shared-lock acquisitions (read ops).
    std::uint64_t read_lock_contended = 0;   ///< Shared acquisitions blocked.
    std::uint64_t write_lock_contended = 0;  ///< Exclusive acquis. blocked.
    std::uint64_t cell_lock_contended = 0;   ///< Stripe locks not free on try.
  };

  /// Creates a trunk. Fails with OutOfMemory if the reservation cannot be
  /// made.
  static Status Create(const Options& options,
                       std::unique_ptr<MemoryTrunk>* out);

  ~MemoryTrunk();
  MemoryTrunk(const MemoryTrunk&) = delete;
  MemoryTrunk& operator=(const MemoryTrunk&) = delete;

  /// Adds a new cell. Fails with AlreadyExists if the id is present.
  Status AddCell(CellId id, Slice payload);

  /// Adds or replaces a cell. In-place when the existing entry has room.
  Status PutCell(CellId id, Slice payload);

  /// Copies the cell payload into *out.
  Status GetCell(CellId id, std::string* out) const;

  bool Contains(CellId id) const;
  Status GetCellSize(CellId id, std::uint64_t* size) const;

  /// Removes a cell; its bytes are reclaimed by the next defrag pass.
  Status RemoveCell(CellId id);

  /// Appends bytes to an existing cell (the hot path for growing adjacency
  /// lists). Uses the reservation if available; relocates with a fresh
  /// reservation otherwise.
  Status AppendToCell(CellId id, Slice suffix);

  /// Overwrites `bytes` at `offset` within the cell payload (in-place field
  /// update used by cell accessors). offset+len must lie inside the payload.
  Status WriteAt(CellId id, std::uint64_t offset, Slice bytes);

  /// Zero-copy read access. The accessor holds the cell's spin lock, pinning
  /// the cell against defragmentation until destroyed. Do not call mutating
  /// trunk methods for the same *lock stripe* (any cell may share the
  /// stripe) while holding an accessor on the same thread — debug builds
  /// assert on such re-entrant stripe acquisition. Lock-free reads
  /// (GetCell / Contains / GetCellSize) stay safe while holding an accessor.
  class ConstAccessor {
   public:
    ConstAccessor() = default;
    ~ConstAccessor() { Release(); }
    ConstAccessor(ConstAccessor&& other) noexcept { *this = std::move(other); }
    ConstAccessor& operator=(ConstAccessor&& other) noexcept {
      Release();
      lock_ = other.lock_;
      data_ = other.data_;
      other.lock_ = nullptr;
      other.data_ = Slice();
      return *this;
    }
    ConstAccessor(const ConstAccessor&) = delete;
    ConstAccessor& operator=(const ConstAccessor&) = delete;

    Slice data() const { return data_; }
    bool valid() const { return lock_ != nullptr; }

   private:
    friend class MemoryTrunk;
    void Release() {
      if (lock_ != nullptr) {
#ifndef NDEBUG
        internal::NoteStripeReleased(lock_);
#endif
        lock_->Unlock();
        lock_ = nullptr;
      }
    }
    SpinLock* lock_ = nullptr;
    Slice data_;
  };

  Status Access(CellId id, ConstAccessor* accessor) const;

  /// One full compaction pass. Returns the number of bytes reclaimed.
  std::uint64_t Defragment();

  Stats stats() const;

  /// Lock-free reads of the contention counters. Unlike stats() these never
  /// touch the trunk lock, so they are safe to poll from a thread that holds
  /// a ConstAccessor even while a writer owns the exclusive side (stats()
  /// would deadlock there: the writer spins on the accessor's stripe while
  /// holding the lock stats() needs).
  std::uint64_t shared_reads() const noexcept {
    return shared_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t read_lock_contended() const noexcept {
    return read_lock_contended_.load(std::memory_order_relaxed);
  }
  std::uint64_t write_lock_contended() const noexcept {
    return write_lock_contended_.load(std::memory_order_relaxed);
  }
  std::uint64_t cell_lock_contended() const noexcept {
    return cell_lock_contended_.load(std::memory_order_relaxed);
  }

  /// Number of live cells.
  std::uint64_t cell_count() const;

  /// Collects the ids of all live cells (order unspecified). Used by compute
  /// engines to enumerate the vertices hosted on a machine.
  std::vector<CellId> CellIds() const;

  /// Serializes all live cells (id + payload) for persistence to TFS.
  Status Serialize(std::string* out) const;

  /// Rebuilds a trunk from a Serialize() blob.
  static Status Deserialize(Slice data, const Options& options,
                            std::unique_ptr<MemoryTrunk>* out);

 private:
  // On-media entry layout: header followed by `capacity` payload bytes,
  // padded to 8-byte alignment. `id` is kDeadCell for reclaimable entries
  // and kPadCell for end-of-ring padding.
  struct EntryHeader {
    CellId id;
    std::uint32_t size;
    std::uint32_t capacity;
  };
  static_assert(sizeof(EntryHeader) == 16, "entry header must be 16 bytes");

  static constexpr CellId kPadCell = ~static_cast<CellId>(0);
  static constexpr CellId kDeadCell = ~static_cast<CellId>(0) - 1;
  static constexpr std::uint64_t kHeaderSize = sizeof(EntryHeader);
  static constexpr int kLockStripes = 256;

  explicit MemoryTrunk(const Options& options);
  Status Init();

  static std::uint64_t RoundUp8(std::uint64_t n) { return (n + 7) & ~7ull; }
  std::uint64_t EntrySpan(std::uint64_t capacity) const {
    return kHeaderSize + RoundUp8(capacity);
  }

  char* PhysPtr(std::uint64_t logical) const {
    return base_ + (logical % capacity_);
  }
  EntryHeader* HeaderAt(std::uint64_t logical) const {
    return reinterpret_cast<EntryHeader*>(PhysPtr(logical));
  }
  SpinLock& LockFor(CellId id) const;

  /// Contention-counted lock acquisition. ReadLock/WriteLock wrap mu_;
  /// AcquireCellLock takes the cell's stripe spin lock with the debug
  /// re-entrancy assertion (the returned lock is released either by
  /// ReleaseCellLock or by handing it to a ConstAccessor).
  std::shared_lock<std::shared_mutex> ReadLock() const;
  std::unique_lock<std::shared_mutex> WriteLock() const;
  SpinLock* AcquireCellLock(CellId id) const;
  void ReleaseCellLock(SpinLock* lock) const;

  /// RAII stripe-lock holder for mutators.
  class CellLockGuard {
   public:
    CellLockGuard(const MemoryTrunk* trunk, CellId id)
        : trunk_(trunk), lock_(trunk->AcquireCellLock(id)) {}
    ~CellLockGuard() { trunk_->ReleaseCellLock(lock_); }
    CellLockGuard(const CellLockGuard&) = delete;
    CellLockGuard& operator=(const CellLockGuard&) = delete;

   private:
    const MemoryTrunk* trunk_;
    SpinLock* lock_;
  };

  /// Reserves `span` contiguous physical bytes at the head, inserting ring
  /// padding and triggering auto-defrag as needed. On success *logical is
  /// the entry's logical offset. Caller holds mu_.
  Status AllocateLocked(std::uint64_t span, std::uint64_t* logical);
  Status EnsureCommitted(std::uint64_t phys_begin, std::uint64_t length);
  void DecommitDeadPagesLocked();
  Status AppendEntryLocked(CellId id, Slice payload, std::uint64_t capacity,
                           std::uint64_t* logical);
  std::uint64_t DefragmentLocked();

  const Options options_;
  std::uint64_t capacity_ = 0;  ///< Page-rounded reserved bytes.
  std::uint64_t page_size_ = 0;
  char* base_ = nullptr;

  mutable std::shared_mutex mu_;
  TrunkIndex index_;
  std::uint64_t head_ = 0;  ///< Logical append head.
  std::uint64_t tail_ = 0;  ///< Logical committed tail.
  std::vector<bool> committed_pages_;
  std::uint64_t committed_page_count_ = 0;
  bool in_defrag_ = false;  ///< Guards against recursive auto-defrag.
  mutable Stats stats_;
  mutable std::unique_ptr<SpinLock[]> locks_;
  // Lock-contention counters live outside stats_ so the read path can bump
  // them without exclusive ownership; stats() folds them into the snapshot.
  mutable std::atomic<std::uint64_t> shared_reads_{0};
  mutable std::atomic<std::uint64_t> read_lock_contended_{0};
  mutable std::atomic<std::uint64_t> write_lock_contended_{0};
  mutable std::atomic<std::uint64_t> cell_lock_contended_{0};
};

}  // namespace trinity::storage

#endif  // TRINITY_STORAGE_MEMORY_TRUNK_H_
