#ifndef TRINITY_STORAGE_MEMORY_STORAGE_H_
#define TRINITY_STORAGE_MEMORY_STORAGE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/memory_trunk.h"
#include "tfs/tfs.h"

namespace trinity::storage {

/// The memory storage module of one Trinity slave: the set of memory trunks
/// the addressing table currently assigns to this machine (§3: "each machine
/// hosts multiple memory trunks" for trunk-level parallelism and smaller
/// per-trunk hash tables).
///
/// Also owns the machine's defragmentation daemon — a background thread that
/// periodically sweeps trunks whose dead-byte ratio exceeds a threshold
/// (§6.1) — and the trunk persistence path to TFS used for fault tolerance.
class MemoryStorage {
 public:
  struct Options {
    MemoryTrunk::Options trunk;
    /// Defrag a trunk when dead+slack bytes exceed this fraction of used.
    double defrag_threshold = 0.3;
  };

  explicit MemoryStorage(Options options) : options_(std::move(options)) {}
  ~MemoryStorage() { StopDefragDaemon(); }

  MemoryStorage(const MemoryStorage&) = delete;
  MemoryStorage& operator=(const MemoryStorage&) = delete;

  /// Creates an (empty) trunk owned by this machine. Fails with
  /// AlreadyExists when the trunk is already hosted here.
  Status AttachTrunk(TrunkId trunk_id);

  /// Installs an already-built trunk (used during failure recovery when
  /// trunks are reloaded from TFS onto surviving machines).
  Status AttachTrunk(TrunkId trunk_id, std::unique_ptr<MemoryTrunk> trunk);

  /// Drops a trunk (after it migrated to another machine).
  Status DetachTrunk(TrunkId trunk_id);

  /// Trunk lookup; returns nullptr if the trunk is not hosted here.
  MemoryTrunk* trunk(TrunkId trunk_id) const;

  std::vector<TrunkId> trunk_ids() const;

  /// --- Hot-standby replica trunks -------------------------------------
  /// Replica trunks are full in-memory copies of trunks whose primary lives
  /// on another machine. They sit in a separate map so the primary lookup
  /// path (`trunk()`) never sees them; routing only reaches them through
  /// the replication handlers and, after promotion, through
  /// PromoteReplicaTrunk.

  /// Creates an empty replica trunk. Unlike AttachTrunk this *replaces* any
  /// existing replica image — re-replication may refresh an out-of-sync
  /// copy.
  Status AttachReplicaTrunk(TrunkId trunk_id);

  /// Installs a fully-built replica image (re-replication transfer).
  Status AttachReplicaTrunk(TrunkId trunk_id,
                            std::unique_ptr<MemoryTrunk> trunk);

  /// Replica lookup; nullptr when this machine holds no replica of it.
  MemoryTrunk* replica_trunk(TrunkId trunk_id) const;

  /// Drops a replica (replication factor restored elsewhere, or the trunk
  /// migrated onto this machine).
  Status DetachReplicaTrunk(TrunkId trunk_id);

  /// Failover: moves a replica trunk into the primary map. The metadata
  /// flip that makes promotion O(1) — no data copy, no TFS read.
  Status PromoteReplicaTrunk(TrunkId trunk_id);

  std::vector<TrunkId> replica_trunk_ids() const;

  /// Committed bytes across replica trunks (replication memory overhead).
  std::uint64_t ReplicaFootprintBytes() const;

  /// Sum of committed bytes across trunks plus index overhead — the memory
  /// footprint number reported in the Fig 13 comparison.
  std::uint64_t MemoryFootprintBytes() const;

  std::uint64_t TotalCellCount() const;

  /// Sums MemoryTrunk::Stats across the hosted (primary) trunks — the
  /// machine-level memory-hierarchy meters (resident/compressed/spilled
  /// bytes, faults, evictions).
  MemoryTrunk::Stats AggregateTrunkStats() const;

  /// Persists every hosted trunk to TFS under `prefix`/trunk_<id>.
  Status SaveToTfs(tfs::Tfs* tfs, const std::string& prefix) const;

  /// Loads one trunk image from TFS and returns it (does not attach).
  static Status LoadTrunkFromTfs(tfs::Tfs* tfs, const std::string& prefix,
                                 TrunkId trunk_id,
                                 const MemoryTrunk::Options& options,
                                 std::unique_ptr<MemoryTrunk>* out);

  /// Starts the background defragmentation daemon.
  void StartDefragDaemon(std::chrono::milliseconds interval);
  void StopDefragDaemon();

  /// One synchronous sweep over all trunks; returns bytes reclaimed.
  std::uint64_t DefragSweep();

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::map<TrunkId, std::unique_ptr<MemoryTrunk>> trunks_;
  std::map<TrunkId, std::unique_ptr<MemoryTrunk>> replica_trunks_;

  std::thread defrag_thread_;
  std::mutex daemon_mu_;
  std::condition_variable daemon_cv_;
  bool daemon_stop_ = false;
  bool daemon_running_ = false;
};

}  // namespace trinity::storage

#endif  // TRINITY_STORAGE_MEMORY_STORAGE_H_
