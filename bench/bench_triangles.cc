// Triangle counting + k-truss over degree-ordered CSR snapshots: per-kernel
// ablation (merge-only vs galloping vs adaptive dispatch) on R-MAT and
// power-law graphs, 1 and 8 machines. The scoreboard is comparison counts
// (hardware-independent; the CI box has one core) plus boundary bytes
// shipped by the distributed exchange. `--json` writes BENCH_triangles.json.

#include <cstdio>
#include <string>

#include "analytics/graph_snapshot.h"
#include "analytics/ktruss.h"
#include "analytics/triangles.h"
#include "bench_util.h"
#include "common/logging.h"

namespace trinity {
namespace {

using analytics::GraphSnapshot;
using analytics::IntersectKernel;
using analytics::KernelStats;
using analytics::SnapshotBuilder;
using analytics::TriangleCounter;
using analytics::TriangleOptions;
using analytics::TriangleStats;

const char* KernelName(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kMerge:
      return "merge";
    case IntersectKernel::kGalloping:
      return "galloping";
    case IntersectKernel::kBitmap:
      return "bitmap";
    case IntersectKernel::kAdaptive:
      return "adaptive";
  }
  return "?";
}

void AddKernelStats(bench::JsonEmitter& json, const char* prefix,
                    const KernelStats& stats) {
  const std::string p(prefix);
  json.Add((p + "_intersections").c_str(), stats.intersections);
  json.Add((p + "_comparisons").c_str(), stats.comparisons);
  json.Add((p + "_len_p50").c_str(), stats.smaller_len.Percentile(50));
  json.Add((p + "_len_p99").c_str(), stats.smaller_len.Percentile(99));
}

void RunConfig(bench::JsonEmitter& json, const char* graph_name,
               const graph::Generators::EdgeList& edges, int slaves) {
  auto cloud = bench::NewCloud(slaves);
  auto graph = bench::LoadGraph(cloud.get(), edges);

  std::uint64_t naive = 0;
  std::uint64_t naive_cells = 0;
  Stopwatch naive_watch;
  TRINITY_CHECK(
      analytics::CountTrianglesNaive(graph.get(), &naive, &naive_cells).ok(),
      "naive count failed");
  const double naive_ms = naive_watch.ElapsedMillis();

  SnapshotBuilder::BuildStats build;
  std::vector<GraphSnapshot> views;
  TRINITY_CHECK(SnapshotBuilder::Build(graph.get(), &views, &build).ok(),
                "snapshot build failed");
  std::uint64_t oriented = 0;
  for (const GraphSnapshot& view : views) oriented += view.oriented_edges();

  std::printf(
      "%-10s m=%d nodes=%llu edges=%llu oriented=%llu triangles=%llu "
      "(naive %.1f ms, %llu cell fetches; snapshot scan %.1f + exch %.1f + "
      "csr %.1f ms, %llu exch bytes)\n",
      graph_name, slaves,
      static_cast<unsigned long long>(edges.num_nodes),
      static_cast<unsigned long long>(edges.edges.size()),
      static_cast<unsigned long long>(oriented),
      static_cast<unsigned long long>(naive), naive_ms,
      static_cast<unsigned long long>(naive_cells), build.scan_ms,
      build.exchange_ms, build.csr_ms,
      static_cast<unsigned long long>(build.exchange_bytes));

  json.BeginRow("snapshot");
  json.Add("graph", std::string(graph_name));
  json.Add("machines", slaves);
  json.Add("nodes", edges.num_nodes);
  json.Add("edges", static_cast<std::uint64_t>(edges.edges.size()));
  json.Add("oriented_edges", oriented);
  json.Add("scan_ms", build.scan_ms);
  json.Add("exchange_ms", build.exchange_ms);
  json.Add("csr_ms", build.csr_ms);
  json.Add("exchange_bytes", build.exchange_bytes);
  json.Add("exchange_messages", build.exchange_messages);
  json.Add("naive_ms", naive_ms);
  json.Add("naive_cell_fetches", naive_cells);
  json.Add("triangles", naive);

  double merge_comparisons = 0;
  for (const IntersectKernel kernel :
       {IntersectKernel::kMerge, IntersectKernel::kGalloping,
        IntersectKernel::kBitmap, IntersectKernel::kAdaptive}) {
    TriangleOptions options;
    options.kernel = kernel;
    TriangleCounter counter(graph.get(), options);
    TriangleStats stats;
    TRINITY_CHECK(counter.Count(views, &stats).ok(), "count failed");
    TRINITY_CHECK(stats.triangles == naive, "kernel disagrees with naive");

    const double wall_ms = stats.exchange_ms + stats.count_ms;
    const double per_sec =
        stats.count_ms > 0
            ? stats.total_intersections() / (stats.count_ms / 1000.0)
            : 0;
    if (kernel == IntersectKernel::kMerge) {
      merge_comparisons = static_cast<double>(stats.total_comparisons());
    }
    const double vs_merge =
        merge_comparisons > 0
            ? merge_comparisons / stats.total_comparisons()
            : 0;
    std::printf(
        "  %-9s %8.1f ms  %12llu cmp (%.2fx vs merge)  %9.0f isect/s  "
        "boundary %llu calls / %llu bytes\n",
        KernelName(kernel), wall_ms,
        static_cast<unsigned long long>(stats.total_comparisons()), vs_merge,
        per_sec, static_cast<unsigned long long>(stats.boundary_calls),
        static_cast<unsigned long long>(stats.boundary_bytes));

    json.BeginRow("kernel");
    json.Add("graph", std::string(graph_name));
    json.Add("machines", slaves);
    json.Add("kernel", std::string(KernelName(kernel)));
    json.Add("triangles", stats.triangles);
    json.Add("wall_ms", wall_ms);
    json.Add("count_ms", stats.count_ms);
    json.Add("exchange_ms", stats.exchange_ms);
    json.Add("comparisons", stats.total_comparisons());
    json.Add("comparisons_vs_merge", vs_merge);
    json.Add("intersections", stats.total_intersections());
    json.Add("intersections_per_sec", per_sec);
    json.Add("bitmap_builds", stats.bitmap_builds);
    json.Add("bitmap_build_ops", stats.bitmap_build_ops);
    json.Add("boundary_calls", stats.boundary_calls);
    json.Add("boundary_lists", stats.boundary_lists);
    json.Add("boundary_bytes", stats.boundary_bytes);
    AddKernelStats(json, "merge", stats.merge);
    AddKernelStats(json, "gallop", stats.gallop);
    AddKernelStats(json, "probe", stats.probe);
    AddKernelStats(json, "bitmap_and", stats.bitmap_and);
  }

  // k-truss on the gathered snapshot (single-machine decomposition).
  GraphSnapshot global;
  TRINITY_CHECK(SnapshotBuilder::BuildGlobal(graph.get(), &global).ok(),
                "global snapshot failed");
  Stopwatch truss_watch;
  analytics::KTrussResult truss;
  TRINITY_CHECK(analytics::KTrussDecompose(global, &truss).ok(),
                "k-truss failed");
  const double truss_ms = truss_watch.ElapsedMillis();
  TRINITY_CHECK(truss.triangles == naive, "k-truss triangle total mismatch");
  std::printf("  k-truss   %8.1f ms  max k=%u over %zu edges\n", truss_ms,
              truss.max_trussness, truss.num_edges());
  json.BeginRow("ktruss");
  json.Add("graph", std::string(graph_name));
  json.Add("machines", slaves);
  json.Add("wall_ms", truss_ms);
  json.Add("max_trussness", static_cast<std::uint64_t>(truss.max_trussness));
  json.Add("edges", static_cast<std::uint64_t>(truss.num_edges()));
}

int Main(int argc, char** argv) {
  bench::JsonEmitter json("triangles", argc, argv);
  bench::PrintHeader("Analytics",
                     "degree-ordered CSR triangle counting (kernel ablation)");

  const std::uint64_t nodes = 20000;
  const auto rmat = graph::Generators::Rmat(nodes, 8.0, 42);
  const auto powerlaw = graph::Generators::PowerLaw(nodes, 16.0, 2.0, 42);
  for (const int slaves : {1, 8}) {
    RunConfig(json, "rmat", rmat, slaves);
    RunConfig(json, "powerlaw", powerlaw, slaves);
  }
  bench::PrintFooter();
  return 0;
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) { return trinity::Main(argc, argv); }
