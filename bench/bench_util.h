#ifndef TRINITY_BENCH_BENCH_UTIL_H_
#define TRINITY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "cloud/memory_cloud.h"
#include "common/logging.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace trinity::bench {

/// Builds an in-process cluster with `slaves` machines sized for benchmark
/// graphs. p_bits chosen so every slave owns several trunks (paper §3:
/// 2^p > m).
inline std::unique_ptr<cloud::MemoryCloud> NewCloud(
    int slaves, std::uint64_t trunk_bytes = 64ull << 20) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 6;  // 64 trunks.
  options.storage.trunk.capacity = trunk_bytes;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  Status s = cloud::MemoryCloud::Create(options, &cloud);
  TRINITY_CHECK(s.ok(), "bench cloud creation failed");
  return cloud;
}

/// Loads an edge list into a fresh graph on `cloud`.
inline std::unique_ptr<graph::Graph> LoadGraph(
    cloud::MemoryCloud* cloud, const graph::Generators::EdgeList& edges,
    bool with_names = false, bool track_inlinks = true,
    std::uint64_t seed = 0) {
  graph::Graph::Options options;
  options.track_inlinks = track_inlinks;
  auto g = std::make_unique<graph::Graph>(cloud, options);
  Status s = graph::Generators::Load(g.get(), edges, with_names, seed);
  TRINITY_CHECK(s.ok(), "bench graph load failed");
  return g;
}

/// Section header matching the paper's figure/table numbering.
inline void PrintHeader(const char* figure, const char* description) {
  std::printf("\n==== %s: %s ====\n", figure, description);
}

inline void PrintFooter() { std::printf("\n"); }

}  // namespace trinity::bench

#endif  // TRINITY_BENCH_BENCH_UTIL_H_
