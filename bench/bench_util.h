#ifndef TRINITY_BENCH_BENCH_UTIL_H_
#define TRINITY_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cloud/memory_cloud.h"
#include "common/logging.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace trinity::bench {

/// Machine-readable bench output. When the binary is invoked with `--json`,
/// every row recorded here is written to BENCH_<name>.json in the working
/// directory on destruction (or an explicit Flush); without the flag all
/// calls are no-ops, so call sites stay unconditional and the human tables
/// keep printing either way. Rows are flat objects — wall-clock and modeled
/// seconds, message/transfer/byte counters — one per table cell, tagged
/// with a `section` so one file can carry several sweeps.
class JsonEmitter {
 public:
  JsonEmitter(const char* name, int argc, char* const* argv) : name_(name) {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--json") enabled_ = true;
    }
  }
  ~JsonEmitter() { Flush(); }

  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;

  bool enabled() const { return enabled_; }

  void BeginRow(const char* section) {
    if (!enabled_) return;
    rows_.emplace_back();
    Field("section", std::string("\"") + section + "\"");
  }
  void Add(const char* key, double value) {
    if (!enabled_) return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    Field(key, buf);
  }
  void Add(const char* key, std::uint64_t value) {
    if (!enabled_) return;
    Field(key, std::to_string(value));
  }
  void Add(const char* key, int value) {
    if (!enabled_) return;
    Field(key, std::to_string(value));
  }
  void Add(const char* key, bool value) {
    if (!enabled_) return;
    Field(key, value ? "true" : "false");
  }
  /// String values are quoted. Callers must pass std::string explicitly — a
  /// bare literal would prefer the bool overload.
  void Add(const char* key, const std::string& value) {
    if (!enabled_) return;
    Field(key, "\"" + value + "\"");
  }

  void Flush() {
    if (!enabled_ || flushed_) return;
    flushed_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    TRINITY_CHECK(f != nullptr, "cannot open bench json output");
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     rows_[r][i].first.c_str(), rows_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  void Field(const char* key, std::string value) {
    TRINITY_CHECK(!rows_.empty(), "Add before BeginRow");
    rows_.back().emplace_back(key, std::move(value));
  }

  std::string name_;
  bool enabled_ = false;
  bool flushed_ = false;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// Builds an in-process cluster with `slaves` machines sized for benchmark
/// graphs. p_bits chosen so every slave owns several trunks (paper §3:
/// 2^p > m).
inline std::unique_ptr<cloud::MemoryCloud> NewCloud(
    int slaves, std::uint64_t trunk_bytes = 64ull << 20) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 6;  // 64 trunks.
  options.storage.trunk.capacity = trunk_bytes;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  Status s = cloud::MemoryCloud::Create(options, &cloud);
  TRINITY_CHECK(s.ok(), "bench cloud creation failed");
  return cloud;
}

/// Loads an edge list into a fresh graph on `cloud`.
inline std::unique_ptr<graph::Graph> LoadGraph(
    cloud::MemoryCloud* cloud, const graph::Generators::EdgeList& edges,
    bool with_names = false, bool track_inlinks = true,
    std::uint64_t seed = 0) {
  graph::Graph::Options options;
  options.track_inlinks = track_inlinks;
  auto g = std::make_unique<graph::Graph>(cloud, options);
  Status s = graph::Generators::Load(g.get(), edges, with_names, seed);
  TRINITY_CHECK(s.ok(), "bench graph load failed");
  return g;
}

/// Section header matching the paper's figure/table numbering.
inline void PrintHeader(const char* figure, const char* description) {
  std::printf("\n==== %s: %s ====\n", figure, description);
}

inline void PrintFooter() { std::printf("\n"); }

}  // namespace trinity::bench

#endif  // TRINITY_BENCH_BENCH_UTIL_H_
