// Reproduces Fig 14(b): four SPARQL queries over an RDF dataset (the paper
// uses LUBM with 1.37G triples through the Trinity RDF engine [36]; here a
// LUBM-shaped generator at reduced scale), sweeping machine count. Shape to
// reproduce: every query's time falls as machines are added.

#include <cstdio>

#include "bench_util.h"
#include "query/lubm.h"
#include "query/rdf_store.h"

namespace trinity {
namespace {

void Run() {
  bench::PrintHeader("Figure 14(b)",
                     "SPARQL queries on LUBM-shaped RDF data");
  std::printf("%10s %10s %10s %10s %10s %12s\n", "machines", "q1_ms",
              "q2_ms", "q3_ms", "q4_ms", "triples");
  for (int machines : {4, 8, 12, 16}) {
    auto cloud = bench::NewCloud(machines);
    query::RdfStore store(cloud.get());
    query::LubmGenerator::Options options;
    options.universities = 4;
    options.departments_per_university = 10;
    options.professors_per_department = 8;
    options.courses_per_professor = 2;
    options.students_per_department = 60;
    options.courses_per_student = 4;
    query::LubmGenerator::Dataset dataset;
    Status s = query::LubmGenerator::Generate(&store, options, &dataset);
    TRINITY_CHECK(s.ok(), "lubm generation failed");

    query::SparqlQueries queries(&store, net::CostModel{});
    query::SparqlQueries::QueryStats q1, q2, q3, q4;
    TRINITY_CHECK(
        queries.StudentsOfCourse(dataset.first_course, &q1).ok(), "q1");
    TRINITY_CHECK(
        queries.ProfessorsOfUniversity(dataset.first_university, &q2).ok(),
        "q2");
    TRINITY_CHECK(queries.StudentsAdvisedByTheirTeacher(&q3).ok(), "q3");
    TRINITY_CHECK(
        queries.ProfessorsAffiliatedWith(dataset.first_university, &q4).ok(),
        "q4");
    std::printf("%10d %10.3f %10.3f %10.3f %10.3f %12llu\n", machines,
                q1.modeled_millis, q2.modeled_millis, q3.modeled_millis,
                q4.modeled_millis,
                static_cast<unsigned long long>(dataset.triples));
  }
  std::printf(
      "(paper: computation time drops for all four LUBM queries as machines "
      "are added)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main() {
  trinity::Run();
  return 0;
}
