// Reproduces Fig 12(d): PageRank on the Giraph-like baseline (vertices,
// edges and messages as heap objects; no combiner; Writable envelopes; GC
// penalty), sweeping node count and machine count — then contrasts with
// Trinity on the same graph. Paper: Giraph takes 2455 s per iteration on a
// 256M-node graph with 16 machines, while Trinity does a 4x larger graph
// with half the machines in 51 s — two orders of magnitude.

#include <cstdio>

#include "algos/pagerank.h"
#include "baseline/heap_engine.h"
#include "bench_util.h"
#include "common/histogram.h"

namespace trinity {
namespace {

void Run(bench::JsonEmitter* json) {
  bench::PrintHeader("Figure 12(d)",
                     "PageRank on the Giraph-like heap-object baseline");
  const int machine_counts[] = {4, 8, 16};
  const std::uint64_t node_counts[] = {8192, 16384, 32768, 65536};
  std::printf("%10s", "nodes");
  for (int m : machine_counts) std::printf(" %11s%02d", "machines_", m);
  std::printf(" %13s %9s\n", "trinity@8", "slowdown");
  for (std::uint64_t nodes : node_counts) {
    const auto edges = graph::Generators::Rmat(nodes, 13.0, 42);
    std::printf("%10llu", static_cast<unsigned long long>(nodes));
    double giraph8 = 0;
    for (int machines : machine_counts) {
      baseline::HeapEngine::Options options;
      options.num_machines = machines;
      options.iterations = 2;
      baseline::HeapEngine engine(options);
      Status s = engine.LoadGraph(edges);
      TRINITY_CHECK(s.ok(), "heap engine load failed");
      baseline::HeapEngine::RunStats stats;
      Stopwatch watch;
      s = engine.RunPageRank(&stats);
      const double wall_seconds = watch.ElapsedMicros() / 1e6;
      TRINITY_CHECK(s.ok(), "heap engine pagerank failed");
      std::printf(" %13.4f", stats.seconds_per_iteration);
      if (machines == 8) giraph8 = stats.seconds_per_iteration;
      json->BeginRow("fig12d_giraph");
      json->Add("nodes", nodes);
      json->Add("machines", machines);
      json->Add("modeled_seconds_per_iteration", stats.seconds_per_iteration);
      json->Add("modeled_seconds", stats.modeled_seconds);
      json->Add("wall_seconds", wall_seconds);
      json->Add("messages", stats.messages);
      json->Add("memory_bytes", stats.memory_bytes);
    }
    // Trinity on the same graph, 8 machines, for the headline comparison.
    auto cloud = bench::NewCloud(8);
    auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                  /*track_inlinks=*/false);
    algos::PageRankOptions options;
    options.iterations = 2;
    algos::PageRankResult result;
    Stopwatch watch;
    Status s = algos::RunPageRank(graph.get(), options, &result);
    const double wall_seconds = watch.ElapsedMicros() / 1e6;
    TRINITY_CHECK(s.ok(), "trinity pagerank failed");
    std::printf(" %13.4f %8.1fx\n", result.seconds_per_iteration,
                giraph8 / result.seconds_per_iteration);
    json->BeginRow("fig12d_trinity");
    json->Add("nodes", nodes);
    json->Add("machines", 8);
    json->Add("modeled_seconds_per_iteration", result.seconds_per_iteration);
    json->Add("modeled_seconds", result.stats.modeled_seconds);
    json->Add("wall_seconds", wall_seconds);
    json->Add("messages", result.stats.messages);
    json->Add("bytes", result.stats.bytes);
    json->Add("giraph_slowdown_at_8", giraph8 / result.seconds_per_iteration);
  }
  std::printf(
      "(paper: Giraph is ~2 orders of magnitude slower than Trinity and "
      "runs out of memory at degree 16 / 256M nodes)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  trinity::bench::JsonEmitter json("fig12d_giraph_pagerank", argc, argv);
  trinity::Run(&json);
  return 0;
}
