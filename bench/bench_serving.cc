// Serving front-door benchmark: an open-loop mixed workload (70% point
// reads, 15% writes, 10% MultiGet(8), 5% 2-hop traversals) driven through
// the QueryFrontend while the cluster is healthy, degraded (one machine of
// eight killed mid-run, promotions held back so the window stays open), and
// recovered (after the DetectAndRecover sweep).
//
// Open-loop means arrivals are pre-scheduled: latency is measured from the
// request's scheduled arrival, not from when a worker got around to it, so
// queueing delay during the degraded phase shows up in the percentiles
// instead of being silently absorbed by a closed loop slowing down.
//
// Reported per phase: throughput, p50/p95/p99 latency, terminal-status
// counts (OK / NotFound / DeadlineExceeded / shed / Unavailable), and the
// degraded reads served by replicas. A final ablation section replays a
// dead-path workload with the cluster-wide retry budget on and off and
// reports the sync-call amplification the budget prevents.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "net/fault_injector.h"
#include "serving/query_frontend.h"
#include "tfs/tfs.h"

namespace trinity {
namespace {

using serving::QueryFrontend;
using serving::ServingStats;

constexpr int kSlaves = 8;
constexpr CellId kKvCells = 4096;        ///< Point/batch keyspace.
constexpr CellId kGraphBase = 1 << 20;   ///< Graph node ids live far above.
constexpr CellId kGraphNodes = 1024;
constexpr int kRequestsPerPhase = 4000;
constexpr int kWorkers = 8;
constexpr std::uint64_t kInterArrivalMicros = 20;  ///< ~50k req/s offered.

struct PhaseResult {
  Histogram latency_micros;
  std::uint64_t ok = 0;
  std::uint64_t not_found = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t shed = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t other = 0;
  double wall_seconds = 0.0;
};

QueryFrontend::Request MakeRequest(int i) {
  const std::uint64_t h = Mix64(static_cast<std::uint64_t>(i) + 1);
  QueryFrontend::Request request;
  const int pick = static_cast<int>(h % 100);
  if (pick < 70) {
    request.type = QueryFrontend::RequestType::kGet;
    request.id = (h >> 8) % kKvCells;
  } else if (pick < 85) {
    request.type = QueryFrontend::RequestType::kPut;
    request.id = (h >> 8) % kKvCells;
    request.payload = std::string(64, static_cast<char>('a' + (h >> 16) % 26));
  } else if (pick < 95) {
    request.type = QueryFrontend::RequestType::kMultiGet;
    request.ids.reserve(8);
    for (int j = 0; j < 8; ++j) {
      request.ids.push_back(Mix64(h + static_cast<std::uint64_t>(j)) %
                            kKvCells);
    }
  } else {
    request.type = QueryFrontend::RequestType::kKHop;
    request.id = kGraphBase + (h >> 8) % kGraphNodes;
    request.hops = 2;
  }
  return request;
}

PhaseResult RunPhase(QueryFrontend* frontend) {
  PhaseResult result;
  std::mutex mu;
  std::atomic<int> next{0};
  Stopwatch phase_watch;
  const auto phase_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= kRequestsPerPhase) return;
        const auto scheduled =
            phase_start + std::chrono::microseconds(
                              static_cast<std::uint64_t>(i) *
                              kInterArrivalMicros);
        std::this_thread::sleep_until(scheduled);
        const QueryFrontend::Request request = MakeRequest(i);
        QueryFrontend::Response response;
        const Status s = frontend->Execute(request, &response);
        const double latency =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - scheduled)
                .count();
        std::lock_guard<std::mutex> lock(mu);
        result.latency_micros.Add(latency);
        if (s.ok()) {
          ++result.ok;
        } else if (s.IsNotFound()) {
          ++result.not_found;
        } else if (s.IsDeadlineExceeded()) {
          ++result.deadline_exceeded;
        } else if (s.IsResourceExhausted()) {
          ++result.shed;
        } else if (s.IsRetryable()) {
          ++result.unavailable;
        } else {
          ++result.other;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  result.wall_seconds = phase_watch.ElapsedSeconds();
  return result;
}

void EmitPhase(bench::JsonEmitter* json, const char* phase,
               const PhaseResult& r, const ServingStats& before,
               const ServingStats& after) {
  const double throughput =
      r.wall_seconds > 0.0 ? kRequestsPerPhase / r.wall_seconds : 0.0;
  std::printf("%10s %10.0f %9.0f %9.0f %9.0f %7llu %7llu %7llu %7llu %7llu\n",
              phase, throughput, r.latency_micros.Percentile(50.0),
              r.latency_micros.Percentile(95.0),
              r.latency_micros.Percentile(99.0),
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.not_found),
              static_cast<unsigned long long>(r.deadline_exceeded),
              static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.unavailable));
  json->BeginRow("serving");
  json->Add("phase", std::string(phase));
  json->Add("requests", static_cast<std::uint64_t>(kRequestsPerPhase));
  json->Add("wall_seconds", r.wall_seconds);
  json->Add("throughput_rps", throughput);
  json->Add("latency_p50_micros", r.latency_micros.Percentile(50.0));
  json->Add("latency_p95_micros", r.latency_micros.Percentile(95.0));
  json->Add("latency_p99_micros", r.latency_micros.Percentile(99.0));
  json->Add("latency_mean_micros", r.latency_micros.Mean());
  json->Add("latency_max_micros", r.latency_micros.Max());
  json->Add("ok", r.ok);
  json->Add("not_found", r.not_found);
  json->Add("deadline_exceeded", r.deadline_exceeded);
  json->Add("shed", r.shed);
  json->Add("unavailable", r.unavailable);
  json->Add("other", r.other);
  json->Add("degraded_reads", after.degraded_reads - before.degraded_reads);
  json->Add("retries_granted", after.retries_granted - before.retries_granted);
  json->Add("retries_denied", after.retries_denied - before.retries_denied);
}

void RunServing(bench::JsonEmitter* json) {
  bench::PrintHeader("Serving",
                     "open-loop mixed workload, 1-of-8 machine killed "
                     "mid-run (k=1 hot standby, promotions held)");

  tfs::Tfs::Options tfs_options;
  tfs_options.root = "/tmp/trinity_bench_serving";
  std::filesystem::remove_all(tfs_options.root);
  std::unique_ptr<tfs::Tfs> tfs;
  TRINITY_CHECK(tfs::Tfs::Open(tfs_options, &tfs).ok(), "tfs open");

  cloud::MemoryCloud::Options options;
  options.num_slaves = kSlaves;
  options.p_bits = 6;
  options.tfs = tfs.get();
  options.replication_factor = 1;
  // Hold promotions until the recovery sweep so the degraded phase stays
  // degraded: reads fail over to replicas, writes to the victim's trunks
  // resolve terminally instead of riding a promotion race.
  options.auto_promote = false;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  TRINITY_CHECK(cloud::MemoryCloud::Create(options, &cloud).ok(),
                "cloud create");

  const std::string payload(64, 's');
  for (CellId id = 0; id < kKvCells; ++id) {
    TRINITY_CHECK(cloud->PutCell(id, Slice(payload)).ok(), "seed kv");
  }
  graph::Graph graph(cloud.get());
  for (CellId v = 0; v < kGraphNodes; ++v) {
    TRINITY_CHECK(graph.AddNode(kGraphBase + v, Slice("node")).ok(),
                  "seed node");
  }
  for (CellId v = 0; v < kGraphNodes; ++v) {
    TRINITY_CHECK(
        graph.AddEdge(kGraphBase + v, kGraphBase + (v + 1) % kGraphNodes).ok(),
        "seed edge");
    TRINITY_CHECK(
        graph.AddEdge(kGraphBase + v, kGraphBase + (v + 7) % kGraphNodes).ok(),
        "seed edge");
  }

  QueryFrontend::Options frontend_options;
  frontend_options.default_deadline_micros = 200000.0;
  QueryFrontend frontend(cloud.get(), &graph, frontend_options);

  std::printf("%10s %10s %9s %9s %9s %7s %7s %7s %7s %7s\n", "phase", "rps",
              "p50_us", "p95_us", "p99_us", "ok", "notfnd", "ddl", "shed",
              "unavail");

  ServingStats before = frontend.stats();
  PhaseResult healthy = RunPhase(&frontend);
  ServingStats after = frontend.stats();
  EmitPhase(json, "healthy", healthy, before, after);

  const MachineId victim = 3;
  TRINITY_CHECK(cloud->FailMachine(victim).ok(), "fail machine");
  before = after;
  PhaseResult degraded = RunPhase(&frontend);
  after = frontend.stats();
  EmitPhase(json, "degraded", degraded, before, after);

  cloud->DetectAndRecover();
  before = after;
  PhaseResult recovered = RunPhase(&frontend);
  after = frontend.stats();
  EmitPhase(json, "recovered", recovered, before, after);

  std::printf(
      "(degraded reads fail over to replicas; writes to the dead owner "
      "resolve terminally under the deadline instead of hanging)\n");
  std::filesystem::remove_all(tfs_options.root);
  bench::PrintFooter();
}

// Retry-storm ablation: every op call against the cluster fails on the wire
// (injected), so each request would retry to max_attempts. The cluster-wide
// token bucket caps the total number of retries instead, bounding the
// amplification a dead dependency can inflict on the fabric.
void RunRetryAblation(bench::JsonEmitter* json) {
  bench::PrintHeader("Retry budget ablation",
                     "dead op path, sync-call amplification with the "
                     "cluster-wide budget on vs off");
  std::printf("%8s %10s %12s %14s\n", "budget", "requests", "sync_calls",
              "amplification");
  constexpr int kRequests = 200;
  for (const bool enable_budget : {true, false}) {
    auto injector = std::make_unique<net::FaultInjector>(/*seed=*/11);
    net::FaultInjector::Policy dead;
    dead.call_fail_prob = 1.0;
    injector->SetHandlerRangePolicy(cloud::kCellOpHandler,
                                    cloud::kCellOpHandler, dead);
    cloud::MemoryCloud::Options options;
    options.num_slaves = 4;
    options.p_bits = 4;
    std::unique_ptr<cloud::MemoryCloud> cloud;
    TRINITY_CHECK(cloud::MemoryCloud::Create(options, &cloud).ok(),
                  "cloud create");
    cloud->fabric().SetFaultInjector(injector.get());

    QueryFrontend::Options frontend_options;
    frontend_options.enable_retry_budget = enable_budget;
    frontend_options.retry_budget.initial = 32.0;
    frontend_options.retry_budget.capacity = 32.0;
    frontend_options.retry_budget.refill_per_op = 0.0;
    frontend_options.default_deadline_micros = 0.0;  // Budget effect only.
    QueryFrontend frontend(cloud.get(), nullptr, frontend_options);

    const std::uint64_t calls_before = cloud->fabric().stats().sync_calls;
    for (int i = 0; i < kRequests; ++i) {
      QueryFrontend::Request request;
      request.type = QueryFrontend::RequestType::kGet;
      request.id = static_cast<CellId>(i);
      QueryFrontend::Response response;
      frontend.Execute(request, &response);
    }
    const std::uint64_t sync_calls =
        cloud->fabric().stats().sync_calls - calls_before;
    const double amplification =
        static_cast<double>(sync_calls) / kRequests;
    std::printf("%8s %10d %12llu %14.2f\n", enable_budget ? "on" : "off",
                kRequests, static_cast<unsigned long long>(sync_calls),
                amplification);
    json->BeginRow("retry_ablation");
    json->Add("budget_enabled", enable_budget);
    json->Add("requests", static_cast<std::uint64_t>(kRequests));
    json->Add("sync_calls", sync_calls);
    json->Add("amplification", amplification);
    const ServingStats stats = frontend.stats();
    json->Add("shed", stats.shed);
    json->Add("unavailable", stats.unavailable);
    json->Add("retries_granted", stats.retries_granted);
    json->Add("retries_denied", stats.retries_denied);
  }
  std::printf(
      "(without the budget every request retries to max_attempts; the "
      "token bucket bounds cluster-wide retries)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  trinity::bench::JsonEmitter json("serving", argc, argv);
  trinity::RunServing(&json);
  trinity::RunRetryAblation(&json);
  return 0;
}
