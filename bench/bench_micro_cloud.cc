// Microbenchmarks for the memory cloud's key-value path (§3) and the cell
// accessor mechanism (§4.3): local vs remote access, message packing
// throughput, and accessor field mapping vs raw blob access.

#include <benchmark/benchmark.h>

#include "cloud/memory_cloud.h"
#include "tsl/cell_accessor.h"
#include "tsl/schema.h"

namespace trinity {
namespace {

std::unique_ptr<cloud::MemoryCloud> NewCloud() {
  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 5;
  options.storage.trunk.capacity = 64ull << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  (void)cloud::MemoryCloud::Create(options, &cloud);
  return cloud;
}

void BM_CloudLocalGet(benchmark::State& state) {
  auto cloud = NewCloud();
  // Pick cells owned by slave 0 and read them from slave 0.
  std::vector<CellId> local_ids;
  for (CellId id = 0; local_ids.size() < 1000; ++id) {
    if (cloud->MachineOf(id) == 0) {
      (void)cloud->AddCellFrom(0, id, Slice("local payload bytes"));
      local_ids.push_back(id);
    }
  }
  std::string out;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cloud->GetCellFrom(0, local_ids[i % local_ids.size()], &out));
    ++i;
  }
}
BENCHMARK(BM_CloudLocalGet);

void BM_CloudRemoteGet(benchmark::State& state) {
  auto cloud = NewCloud();
  std::vector<CellId> remote_ids;
  for (CellId id = 0; remote_ids.size() < 1000; ++id) {
    if (cloud->MachineOf(id) == 1) {
      (void)cloud->AddCellFrom(1, id, Slice("remote payload bytes"));
      remote_ids.push_back(id);
    }
  }
  std::string out;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cloud->GetCellFrom(0, remote_ids[i % remote_ids.size()], &out));
    ++i;
  }
}
BENCHMARK(BM_CloudRemoteGet);

void BM_CloudPut(benchmark::State& state) {
  auto cloud = NewCloud();
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'p');
  CellId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cloud->PutCell(id++ % 100000, Slice(payload)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CloudPut)->Arg(64)->Arg(1024);

void BM_FabricPackedSend(benchmark::State& state) {
  net::Fabric fabric(2);
  fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {});
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'm');
  for (auto _ : state) {
    (void)fabric.SendAsync(0, 1, 7, Slice(payload));
  }
  fabric.FlushAll();
  state.counters["transfers_per_msg"] =
      static_cast<double>(fabric.stats().transfers) /
      static_cast<double>(fabric.stats().messages);
}
BENCHMARK(BM_FabricPackedSend)->Arg(8)->Arg(64)->Arg(512);

void BM_CellAccessorFieldRead(benchmark::State& state) {
  tsl::SchemaRegistry registry;
  (void)tsl::SchemaRegistry::Compile(
      "cell struct Node { long Id; string Name; List<long> Links; double "
      "Rank; }",
      &registry);
  tsl::CellAccessor cell =
      tsl::CellAccessor::NewDefault(registry.struct_schema("Node"));
  (void)cell.SetInt64(0, 42);
  (void)cell.SetString(1, Slice("some node name"));
  for (int i = 0; i < 64; ++i) (void)cell.AppendListInt64(2, i);
  (void)cell.SetDouble(3, 0.5);
  double rank = 0;
  for (auto _ : state) {
    // Field 3 sits after two variable-length fields: the accessor walks the
    // layout on every read — the data-mapper cost the paper describes.
    (void)cell.GetDouble(3, &rank);
    benchmark::DoNotOptimize(rank);
  }
}
BENCHMARK(BM_CellAccessorFieldRead);

void BM_CellAccessorListAppend(benchmark::State& state) {
  tsl::SchemaRegistry registry;
  (void)tsl::SchemaRegistry::Compile(
      "cell struct Node { long Id; List<long> Links; }", &registry);
  tsl::CellAccessor cell =
      tsl::CellAccessor::NewDefault(registry.struct_schema("Node"));
  std::int64_t v = 0;
  for (auto _ : state) {
    if (!cell.AppendListInt64(1, v++).ok() || v % 100000 == 0) {
      state.PauseTiming();
      cell = tsl::CellAccessor::NewDefault(registry.struct_schema("Node"));
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_CellAccessorListAppend);

}  // namespace
}  // namespace trinity

BENCHMARK_MAIN();
