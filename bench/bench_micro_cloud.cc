// Microbenchmarks for the memory cloud's key-value path (§3) and the cell
// accessor mechanism (§4.3): local vs remote access, message packing
// throughput, and accessor field mapping vs raw blob access.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "cloud/memory_cloud.h"
#include "tsl/cell_accessor.h"
#include "tsl/schema.h"

namespace trinity {
namespace {

std::unique_ptr<cloud::MemoryCloud> NewCloud() {
  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 5;
  options.storage.trunk.capacity = 64ull << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  (void)cloud::MemoryCloud::Create(options, &cloud);
  return cloud;
}

void BM_CloudLocalGet(benchmark::State& state) {
  auto cloud = NewCloud();
  // Pick cells owned by slave 0 and read them from slave 0.
  std::vector<CellId> local_ids;
  for (CellId id = 0; local_ids.size() < 1000; ++id) {
    if (cloud->MachineOf(id) == 0) {
      (void)cloud->AddCellFrom(0, id, Slice("local payload bytes"));
      local_ids.push_back(id);
    }
  }
  std::string out;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cloud->GetCellFrom(0, local_ids[i % local_ids.size()], &out));
    ++i;
  }
}
BENCHMARK(BM_CloudLocalGet);

void BM_CloudRemoteGet(benchmark::State& state) {
  auto cloud = NewCloud();
  std::vector<CellId> remote_ids;
  for (CellId id = 0; remote_ids.size() < 1000; ++id) {
    if (cloud->MachineOf(id) == 1) {
      (void)cloud->AddCellFrom(1, id, Slice("remote payload bytes"));
      remote_ids.push_back(id);
    }
  }
  std::string out;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cloud->GetCellFrom(0, remote_ids[i % remote_ids.size()], &out));
    ++i;
  }
}
BENCHMARK(BM_CloudRemoteGet);

void BM_CloudPut(benchmark::State& state) {
  auto cloud = NewCloud();
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'p');
  CellId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cloud->PutCell(id++ % 100000, Slice(payload)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CloudPut)->Arg(64)->Arg(1024);

void BM_FabricPackedSend(benchmark::State& state) {
  net::Fabric fabric(2);
  fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {});
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'm');
  for (auto _ : state) {
    (void)fabric.SendAsync(0, 1, 7, Slice(payload));
  }
  fabric.FlushAll();
  state.counters["transfers_per_msg"] =
      static_cast<double>(fabric.stats().transfers) /
      static_cast<double>(fabric.stats().messages);
}
BENCHMARK(BM_FabricPackedSend)->Arg(8)->Arg(64)->Arg(512);

void BM_CellAccessorFieldRead(benchmark::State& state) {
  tsl::SchemaRegistry registry;
  (void)tsl::SchemaRegistry::Compile(
      "cell struct Node { long Id; string Name; List<long> Links; double "
      "Rank; }",
      &registry);
  tsl::CellAccessor cell =
      tsl::CellAccessor::NewDefault(registry.struct_schema("Node"));
  (void)cell.SetInt64(0, 42);
  (void)cell.SetString(1, Slice("some node name"));
  for (int i = 0; i < 64; ++i) (void)cell.AppendListInt64(2, i);
  (void)cell.SetDouble(3, 0.5);
  double rank = 0;
  for (auto _ : state) {
    // Field 3 sits after two variable-length fields: the accessor walks the
    // layout on every read — the data-mapper cost the paper describes.
    (void)cell.GetDouble(3, &rank);
    benchmark::DoNotOptimize(rank);
  }
}
BENCHMARK(BM_CellAccessorFieldRead);

void BM_CellAccessorListAppend(benchmark::State& state) {
  tsl::SchemaRegistry registry;
  (void)tsl::SchemaRegistry::Compile(
      "cell struct Node { long Id; List<long> Links; }", &registry);
  tsl::CellAccessor cell =
      tsl::CellAccessor::NewDefault(registry.struct_schema("Node"));
  std::int64_t v = 0;
  for (auto _ : state) {
    if (!cell.AppendListInt64(1, v++).ok() || v % 100000 == 0) {
      state.PauseTiming();
      cell = tsl::CellAccessor::NewDefault(registry.struct_schema("Node"));
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_CellAccessorListAppend);

/// Cloud-level companion to the storage read sweep: N threads issue local
/// GetCellFrom against slave 0 (the path that used to convoy on the global
/// cloud mutex and the trunk mutex), plus a remote per-id vs MultiGet
/// comparison that shows the sync-call batching win. Emitted to
/// BENCH_read_throughput_cloud.json with --json.
void RunCloudReadSweep(int argc, char* const* argv) {
  bench::JsonEmitter json("read_throughput_cloud", argc, argv);
  auto cloud = NewCloud();
  std::vector<CellId> local_ids;
  std::vector<CellId> remote_ids;
  for (CellId id = 0; local_ids.size() < 1000 || remote_ids.size() < 1000;
       ++id) {
    if (cloud->MachineOf(id) == 0 && local_ids.size() < 1000) {
      (void)cloud->AddCellFrom(0, id, Slice("local payload bytes"));
      local_ids.push_back(id);
    } else if (cloud->MachineOf(id) == 1 && remote_ids.size() < 1000) {
      (void)cloud->AddCellFrom(1, id, Slice("remote payload bytes"));
      remote_ids.push_back(id);
    }
  }
  std::printf("\n==== read throughput: cloud local gets ====\n");
  double base_mops = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    const std::uint64_t ops_per_thread = 100000;
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) {
        }
        std::string out;
        for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
          const CellId id = local_ids[(t * 7919 + i) % local_ids.size()];
          benchmark::DoNotOptimize(cloud->GetCellFrom(0, id, &out));
        }
      });
    }
    const auto start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (std::thread& w : workers) w.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::uint64_t total = ops_per_thread * threads;
    const double mops = static_cast<double>(total) / secs / 1e6;
    if (threads == 1) base_mops = mops;
    std::printf("cloud_local_get threads=%d  %8.2f Mops/s  speedup=%.2fx\n",
                threads, mops, base_mops > 0 ? mops / base_mops : 1.0);
    json.BeginRow("cloud_local_get");
    json.Add("threads", threads);
    json.Add("ops", total);
    json.Add("seconds", secs);
    json.Add("mops_per_sec", mops);
    json.Add("speedup_vs_1t", base_mops > 0 ? mops / base_mops : 1.0);
  }
  // Remote reads: 1000 ids fetched one sync call at a time vs one MultiGet
  // (which packs them into a single request per owner machine).
  const auto stats_before = cloud->fabric().stats();
  const auto per_id_start = std::chrono::steady_clock::now();
  std::string out;
  for (CellId id : remote_ids) {
    benchmark::DoNotOptimize(cloud->GetCellFrom(0, id, &out));
  }
  const double per_id_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    per_id_start)
          .count();
  const auto stats_mid = cloud->fabric().stats();
  std::vector<cloud::MemoryCloud::MultiGetResult> results;
  const auto batched_start = std::chrono::steady_clock::now();
  (void)cloud->MultiGet(0, remote_ids, &results);
  const double batched_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    batched_start)
          .count();
  const auto stats_after = cloud->fabric().stats();
  const std::uint64_t per_id_calls =
      stats_mid.sync_calls - stats_before.sync_calls;
  const std::uint64_t batched_calls =
      stats_after.sync_calls - stats_mid.sync_calls;
  std::printf("cloud_remote_get per-id:  %zu ids, %llu sync calls, %.3f ms\n",
              remote_ids.size(),
              static_cast<unsigned long long>(per_id_calls),
              per_id_secs * 1e3);
  std::printf("cloud_remote_get batched: %zu ids, %llu sync calls, %.3f ms\n",
              remote_ids.size(),
              static_cast<unsigned long long>(batched_calls),
              batched_secs * 1e3);
  json.BeginRow("cloud_multiget_per_id");
  json.Add("ids", static_cast<std::uint64_t>(remote_ids.size()));
  json.Add("sync_calls", per_id_calls);
  json.Add("seconds", per_id_secs);
  json.BeginRow("cloud_multiget_batched");
  json.Add("ids", static_cast<std::uint64_t>(remote_ids.size()));
  json.Add("sync_calls", batched_calls);
  json.Add("seconds", batched_secs);
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  trinity::RunCloudReadSweep(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
