// Out-of-core graph processing (docs/memory_hierarchy.md): the same
// power-law graph is run fully resident and under a trunk memory budget of
// ~1/4 of its resident footprint (so the graph is 4x the budget), with and
// without delta-varint adjacency compression. PageRank must complete in
// every configuration with bit-identical ranks; the sweep reports the
// spill/fault traffic and the slowdown the cold tier costs, plus the
// resident-byte savings compression buys. Rows land in BENCH_outofcore.json
// with --json.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/histogram.h"
#include "tfs/tfs.h"

namespace trinity {
namespace {

constexpr std::uint64_t kNodes = 20000;
constexpr double kAvgDegree = 16.0;
constexpr int kSlaves = 2;
constexpr int kPBits = 4;  // 16 trunks.
constexpr int kKhopSources = 100;

struct Config {
  const char* name;
  bool compress;
  bool out_of_core;
};

struct RunResult {
  double load_seconds = 0;
  double pagerank_seconds = 0;
  double khop_seconds = 0;
  std::string rank_image;
  storage::MemoryTrunk::Stats stats;
  std::uint64_t khop_faults = 0;
  std::uint64_t tfs_bytes_written = 0;
  std::uint64_t tfs_bytes_read = 0;
};

std::string RankImage(const algos::PageRankResult& result) {
  std::map<CellId, double> sorted(result.ranks.begin(), result.ranks.end());
  std::string image;
  image.reserve(sorted.size() * 16);
  for (const auto& [v, rank] : sorted) {
    image.append(reinterpret_cast<const char*>(&v), sizeof(v));
    image.append(reinterpret_cast<const char*>(&rank), sizeof(rank));
  }
  return image;
}

RunResult RunConfig(const Config& config, const graph::Generators::EdgeList& edges,
                    std::uint64_t memory_budget) {
  RunResult r;
  std::unique_ptr<tfs::Tfs> tfs;
  const std::string root = "/tmp/trinity_outofcore_" +
                           std::to_string(::getpid()) + "_" + config.name;
  if (config.out_of_core) {
    std::filesystem::remove_all(root);
    tfs::Tfs::Options tfs_options;
    tfs_options.root = root;
    TRINITY_CHECK(tfs::Tfs::Open(tfs_options, &tfs).ok(), "tfs open failed");
  }
  cloud::MemoryCloud::Options options;
  options.num_slaves = kSlaves;
  options.p_bits = kPBits;
  options.storage.trunk.capacity = 64ull << 20;
  options.storage.trunk.compress_adjacency = config.compress;
  if (config.out_of_core) {
    options.storage.trunk.memory_budget = memory_budget;
    options.storage.trunk.cold_page_bytes = 4 << 10;
    options.tfs = tfs.get();
  }
  std::unique_ptr<cloud::MemoryCloud> cloud;
  TRINITY_CHECK(cloud::MemoryCloud::Create(options, &cloud).ok(),
                "cloud creation failed");

  graph::Graph::Options graph_options;
  graph_options.track_inlinks = false;
  graph::Graph graph(cloud.get(), graph_options);
  Stopwatch load_watch;
  TRINITY_CHECK(graph::Generators::Load(&graph, edges, /*with_names=*/false,
                                        /*seed=*/42, /*sort_adjacency=*/true)
                    .ok(),
                "graph load failed");
  r.load_seconds = load_watch.ElapsedMicros() / 1e6;

  // PageRank over the full graph: every superstep touches every vertex, the
  // worst case for a cold tier (sequential scans defeat the clock's
  // recency signal, §6.1 of the hierarchy doc).
  algos::PageRankOptions pr_options;
  pr_options.iterations = 2;
  algos::PageRankResult result;
  Stopwatch pr_watch;
  TRINITY_CHECK(algos::RunPageRank(&graph, pr_options, &result).ok(),
                config.name);  // PageRank failed under this config.
  r.pagerank_seconds = pr_watch.ElapsedMicros() / 1e6;
  r.rank_image = RankImage(result);

  // k-hop reads: 2-hop out-neighborhoods from scattered sources — the
  // pointer-chasing access pattern the clock *can* serve from the hot set.
  const std::uint64_t faults_before =
      cloud->AggregateTrunkStats().cells_faulted;
  Stopwatch khop_watch;
  std::uint64_t touched = 0;
  for (int s = 0; s < kKhopSources; ++s) {
    const CellId source = (static_cast<CellId>(s) * 7919) % kNodes;
    std::vector<CellId> hop1;
    if (!graph.GetOutlinks(source, &hop1).ok()) continue;
    for (std::size_t i = 0; i < hop1.size() && i < 16; ++i) {
      std::vector<CellId> hop2;
      if (graph.GetOutlinks(hop1[i], &hop2).ok()) touched += hop2.size();
    }
  }
  r.khop_seconds = khop_watch.ElapsedMicros() / 1e6;
  TRINITY_CHECK(touched > 0, "k-hop traversals touched no edges");

  r.stats = cloud->AggregateTrunkStats();
  r.khop_faults = r.stats.cells_faulted - faults_before;
  if (tfs != nullptr) {
    r.tfs_bytes_written = tfs->bytes_written();
    r.tfs_bytes_read = tfs->bytes_read();
  }
  cloud.reset();  // Before the TFS it points at.
  tfs.reset();
  if (config.out_of_core) std::filesystem::remove_all(root);
  return r;
}

void Run(bench::JsonEmitter* json) {
  bench::PrintHeader("Out-of-core hierarchy",
                     "PageRank + 2-hop reads, graph ~4x the trunk budget");
  const auto edges =
      graph::Generators::PowerLaw(kNodes, kAvgDegree, 2.2, 42);

  // Calibrate: measure the raw resident footprint, then budget each trunk
  // at 1/4 of its average share so the out-of-core runs host a graph four
  // times their RAM allowance.
  const Config configs[] = {
      {"resident_raw", false, false},
      {"resident_compressed", true, false},
      {"outofcore_raw", false, true},
      {"outofcore_compressed", true, true},
  };
  std::map<std::string, RunResult> results;
  std::uint64_t budget = 0;
  std::printf("%-22s %9s %9s %9s %12s %12s %10s %10s\n", "config", "load_s",
              "pr_s", "khop_s", "resident_B", "spilled_B", "evicted",
              "faulted");
  for (const Config& config : configs) {
    RunResult r = RunConfig(config, edges, budget);
    if (std::string(config.name) == "resident_raw") {
      // 2^p_bits trunks share the graph; budget each at 1/4 of its share.
      budget = r.stats.resident_bytes / (1ull << kPBits) / 4;
      TRINITY_CHECK(budget > 0, "calibration run had no resident bytes");
    }
    std::printf("%-22s %9.3f %9.3f %9.3f %12llu %12llu %10llu %10llu\n",
                config.name, r.load_seconds, r.pagerank_seconds,
                r.khop_seconds,
                static_cast<unsigned long long>(r.stats.resident_bytes),
                static_cast<unsigned long long>(r.stats.spilled_bytes),
                static_cast<unsigned long long>(r.stats.cells_evicted),
                static_cast<unsigned long long>(r.stats.cells_faulted));
    results[config.name] = std::move(r);
  }

  // Every configuration must agree with the fully-resident raw ranks bit
  // for bit: the hierarchy is transparent to computation.
  const std::string& baseline = results["resident_raw"].rank_image;
  for (const Config& config : configs) {
    TRINITY_CHECK(results[config.name].rank_image == baseline,
                  config.name);  // Ranks diverge under this config.
  }
  const double compression_saving =
      1.0 - static_cast<double>(
                results["resident_compressed"].stats.resident_bytes) /
                static_cast<double>(
                    results["resident_raw"].stats.resident_bytes);
  std::printf(
      "\nranks bit-identical across all 4 configs; compressed adjacency "
      "saves %.1f%% resident bytes\n",
      100 * compression_saving);
  std::printf(
      "out-of-core slowdown (PageRank): raw %.2fx, compressed %.2fx; "
      "k-hop fault rate: %.2f faults/source (raw)\n",
      results["outofcore_raw"].pagerank_seconds /
          results["resident_raw"].pagerank_seconds,
      results["outofcore_compressed"].pagerank_seconds /
          results["resident_compressed"].pagerank_seconds,
      static_cast<double>(results["outofcore_raw"].khop_faults) /
          kKhopSources);

  for (const Config& config : configs) {
    const RunResult& r = results[config.name];
    json->BeginRow("outofcore");
    json->Add("config", std::string(config.name));
    json->Add("compress_adjacency", config.compress);
    json->Add("out_of_core", config.out_of_core);
    json->Add("nodes", kNodes);
    json->Add("trunk_memory_budget", config.out_of_core ? budget : 0);
    json->Add("load_seconds", r.load_seconds);
    json->Add("pagerank_seconds", r.pagerank_seconds);
    json->Add("khop_seconds", r.khop_seconds);
    json->Add("resident_bytes", r.stats.resident_bytes);
    json->Add("live_bytes", r.stats.live_bytes);
    json->Add("compressed_cells", r.stats.compressed_cells);
    json->Add("compressed_bytes", r.stats.compressed_bytes);
    json->Add("spilled_cells", r.stats.spilled_cells);
    json->Add("spilled_bytes", r.stats.spilled_bytes);
    json->Add("cells_evicted", r.stats.cells_evicted);
    json->Add("cells_faulted", r.stats.cells_faulted);
    json->Add("cold_bytes_written", r.stats.cold_bytes_written);
    json->Add("cold_bytes_read", r.stats.cold_bytes_read);
    json->Add("tfs_bytes_written", r.tfs_bytes_written);
    json->Add("tfs_bytes_read", r.tfs_bytes_read);
    json->Add("khop_faults", r.khop_faults);
    json->Add("ranks_bit_identical", r.rank_image == baseline);
    const char* resident_twin =
        config.compress ? "resident_compressed" : "resident_raw";
    json->Add("pagerank_slowdown_vs_resident",
              r.pagerank_seconds / results[resident_twin].pagerank_seconds);
    json->Add("khop_slowdown_vs_resident",
              r.khop_seconds / results[resident_twin].khop_seconds);
    json->Add("compression_resident_saving", compression_saving);
  }
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  trinity::bench::JsonEmitter json("outofcore", argc, argv);
  trinity::Run(&json);
  return 0;
}
