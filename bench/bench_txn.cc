// Transaction throughput vs abort rate under Zipf contention.
//
// N bank cells seeded on a 4-slave cloud; W worker threads issue transfer
// transactions whose endpoints are drawn from a Zipf(theta) distribution.
// theta sweeps the contention axis: 0.0 is uniform (conflicts are rare),
// 0.99 is the YCSB-style skew, 1.4 funnels most traffic through a handful
// of hot cells. Each op is ONE optimistic attempt — first-committer-wins
// conflicts are counted, not retried — so the abort rate exposes the raw
// conflict probability and throughput counts committed transfers only.
// The conserved bank sum is asserted at the end of every level.
//
// Usage: bench_txn [--json]   (writes BENCH_txn.json)

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/random.h"
#include "txn/txn.h"

namespace trinity::bench {
namespace {

constexpr int kCells = 1024;
constexpr int kThreads = 4;
constexpr int kOpsPerThread = 1500;
constexpr int kAuditReads = 6;  ///< Zipf-sampled read-set per transfer.
constexpr long kSeedBalance = 1000;

/// Zipf sampler over [0, n): CDF table + binary search. theta == 0 is
/// uniform; larger theta concentrates mass on low ranks.
class ZipfSampler {
 public:
  ZipfSampler(int n, double theta) : cdf_(static_cast<std::size_t>(n)) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[static_cast<std::size_t>(i)] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  int Sample(Random& rng) const {
    const double u = rng.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct LevelResult {
  std::uint64_t committed = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t errors = 0;
  double wall_seconds = 0.0;
};

LevelResult RunLevel(double theta) {
  auto cloud = NewCloud(/*slaves=*/4, /*trunk_bytes=*/8ull << 20);
  txn::TxnManager mgr(cloud.get());
  for (CellId id = 1; id <= kCells; ++id) {
    Status s = cloud->PutCell(id, Slice(std::to_string(kSeedBalance)));
    TRINITY_CHECK(s.ok(), "bench seed failed");
  }

  const ZipfSampler zipf(kCells, theta);
  std::atomic<std::uint64_t> committed{0}, conflicts{0}, errors{0};

  Stopwatch wall;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Random rng(0xbe9c4a11ULL * (w + 1) +
                 static_cast<std::uint64_t>(theta * 1000.0));
      const MachineId src = cloud->client_id();
      for (int op = 0; op < kOpsPerThread; ++op) {
        const CellId from = static_cast<CellId>(1 + zipf.Sample(rng));
        CellId to = static_cast<CellId>(1 + zipf.Sample(rng));
        if (to == from) to = static_cast<CellId>(1 + (from % kCells));
        if (to == from) continue;

        txn::Transaction t = mgr.Begin(src);
        // Audit reads widen the conflict window to the whole transaction:
        // a hot cell read here and overwritten by a concurrent transfer
        // before commit fails read-set validation. Under uniform sampling
        // that is rare; under heavy skew most reads hit contended cells.
        Status s = Status::OK();
        for (int a = 0; a < kAuditReads && s.ok(); ++a) {
          const CellId cell = static_cast<CellId>(1 + zipf.Sample(rng));
          std::string unused;
          s = t.Get(cell, &unused);
        }
        std::string fv, tv;
        if (s.ok()) s = t.Get(from, &fv);
        if (s.ok()) s = t.Get(to, &tv);
        if (s.ok()) {
          // Think time between snapshot and commit: yield so concurrent
          // transfers commit inside our validation window. Without it a
          // whole transaction (~10µs) runs inside one scheduler quantum
          // and overlap never happens on small machines, which would
          // measure the scheduler instead of the protocol.
          std::this_thread::yield();
          t.Put(from, std::to_string(std::stol(fv) - 1));
          t.Put(to, std::to_string(std::stol(tv) + 1));
          s = t.Commit();
        }
        if (s.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else if (s.IsTxnConflict()) {
          conflicts.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  LevelResult r;
  r.wall_seconds = wall.ElapsedMicros() / 1e6;
  r.committed = committed.load();
  r.conflicts = conflicts.load();
  r.errors = errors.load();

  // Sanity: transfers conserve the bank sum no matter how many aborted.
  long sum = 0;
  for (CellId id = 1; id <= kCells; ++id) {
    std::string v;
    Status s = mgr.ReadCommitted(cloud->client_id(), id, &v);
    TRINITY_CHECK(s.ok(), "bench readback failed");
    sum += std::stol(v);
  }
  TRINITY_CHECK(sum == kSeedBalance * kCells,
                "bank sum not conserved — atomicity violated");
  return r;
}

}  // namespace
}  // namespace trinity::bench

int main(int argc, char** argv) {
  using namespace trinity::bench;
  JsonEmitter json("txn", argc, argv);

  PrintHeader("TXN", "snapshot-isolation commit throughput vs Zipf skew");
  std::printf("%-8s %10s %10s %8s %12s %12s\n", "theta", "committed",
              "conflicts", "errors", "abort_rate", "commits/s");

  const double thetas[] = {0.0, 0.99, 1.4};
  for (double theta : thetas) {
    const LevelResult r = RunLevel(theta);
    const std::uint64_t attempts = r.committed + r.conflicts + r.errors;
    const double abort_rate =
        attempts == 0 ? 0.0
                      : static_cast<double>(r.conflicts) /
                            static_cast<double>(attempts);
    const double throughput =
        r.wall_seconds <= 0.0
            ? 0.0
            : static_cast<double>(r.committed) / r.wall_seconds;
    std::printf("%-8.2f %10llu %10llu %8llu %11.1f%% %12.0f\n", theta,
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.conflicts),
                static_cast<unsigned long long>(r.errors), abort_rate * 100.0,
                throughput);

    json.BeginRow("zipf_contention");
    json.Add("zipf_theta", theta);
    json.Add("threads", kThreads);
    json.Add("cells", kCells);
    json.Add("attempts", attempts);
    json.Add("committed", r.committed);
    json.Add("conflicts", r.conflicts);
    json.Add("errors", r.errors);
    json.Add("abort_rate", abort_rate);
    json.Add("commits_per_sec", throughput);
    json.Add("wall_seconds", r.wall_seconds);
  }
  PrintFooter();
  return 0;
}
