// Reproduces Fig 13(a-d): BFS in PBGL vs Trinity on R-MAT graphs in a
// 16-machine cluster — execution time and memory usage, sweeping node count
// with average-degree curves 4/8/16/32. Paper: "Trinity runs 10x faster with
// 10x less memory footprint"; PBGL's ghost cells blow up memory on the
// hash-partitioned (not-well-partitioned) graphs.

#include <cstdio>

#include "algos/bfs.h"
#include "baseline/ghost_engine.h"
#include "bench_util.h"

namespace trinity {
namespace {

void Run() {
  const int kMachines = 16;
  const std::uint64_t node_counts[] = {4096, 8192, 16384, 32768};
  const int degrees[] = {4, 8, 16, 32};

  bench::PrintHeader("Figure 13",
                     "BFS in PBGL-like baseline vs Trinity, 16 machines");
  std::printf("%8s %8s %14s %14s %12s %12s %9s %9s\n", "nodes", "degree",
              "pbgl_sec", "trinity_sec", "pbgl_MB", "trinity_MB",
              "t_ratio", "m_ratio");
  for (int degree : degrees) {
    for (std::uint64_t nodes : node_counts) {
      const auto edges =
          graph::Generators::Rmat(nodes, static_cast<double>(degree), 42);
      // PBGL-like ghost-cell engine.
      baseline::GhostEngine::Options ghost_options;
      ghost_options.num_machines = kMachines;
      baseline::GhostEngine ghost(ghost_options);
      baseline::GhostEngine::LoadStats ghost_load;
      Status s = ghost.LoadGraph(edges, &ghost_load);
      TRINITY_CHECK(s.ok(), "ghost load failed");
      baseline::GhostEngine::BfsStats ghost_stats;
      s = ghost.RunBfs(0, &ghost_stats);
      TRINITY_CHECK(s.ok(), "ghost bfs failed");

      // Trinity.
      auto cloud = bench::NewCloud(kMachines);
      auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                    /*track_inlinks=*/false);
      algos::BfsResult trinity_result;
      s = algos::RunBfs(graph.get(), 0, compute::TraversalEngine::Options{},
                        &trinity_result);
      TRINITY_CHECK(s.ok(), "trinity bfs failed");
      const double pbgl_mb =
          static_cast<double>(ghost_load.memory_bytes) / (1 << 20);
      const double trinity_mb =
          static_cast<double>(cloud->MemoryFootprintBytes()) / (1 << 20);
      std::printf("%8llu %8d %14.4f %14.4f %12.2f %12.2f %8.1fx %8.1fx\n",
                  static_cast<unsigned long long>(nodes), degree,
                  ghost_stats.modeled_seconds, trinity_result.modeled_seconds,
                  pbgl_mb, trinity_mb,
                  ghost_stats.modeled_seconds /
                      trinity_result.modeled_seconds,
                  pbgl_mb / trinity_mb);
    }
  }
  std::printf(
      "(paper: Trinity ~10x faster with ~10x less memory; PBGL OOMs at "
      "256M nodes / degree 32)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main() {
  trinity::Run();
  return 0;
}
