// Microbenchmarks for §6.1's circular memory management: allocation,
// lookup, expansion with/without short-lived reservations, and
// defragmentation throughput.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "storage/memory_trunk.h"

namespace trinity::storage {
namespace {

MemoryTrunk::Options TrunkOptions(int reservation_pct = 50) {
  MemoryTrunk::Options options;
  options.capacity = 256ull << 20;
  options.reservation_pct = reservation_pct;
  return options;
}

void BM_TrunkAddCell(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  std::unique_ptr<MemoryTrunk> trunk;
  (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
  CellId id = 0;
  for (auto _ : state) {
    if (!trunk->AddCell(id++, Slice(payload)).ok()) {
      state.PauseTiming();
      (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
      id = 0;
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TrunkAddCell)->Arg(16)->Arg(128)->Arg(1024);

void BM_TrunkGetCell(benchmark::State& state) {
  std::unique_ptr<MemoryTrunk> trunk;
  (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'g');
  const int kCells = 10000;
  for (CellId id = 0; id < kCells; ++id) {
    (void)trunk->AddCell(id, Slice(payload));
  }
  std::string out;
  CellId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trunk->GetCell(id % kCells, &out));
    ++id;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TrunkGetCell)->Arg(16)->Arg(1024);

void BM_TrunkZeroCopyAccess(benchmark::State& state) {
  std::unique_ptr<MemoryTrunk> trunk;
  (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
  const std::string payload(1024, 'z');
  const int kCells = 10000;
  for (CellId id = 0; id < kCells; ++id) {
    (void)trunk->AddCell(id, Slice(payload));
  }
  CellId id = 0;
  for (auto _ : state) {
    MemoryTrunk::ConstAccessor accessor;
    (void)trunk->Access(id % kCells, &accessor);
    benchmark::DoNotOptimize(accessor.data().data());
    ++id;
  }
}
BENCHMARK(BM_TrunkZeroCopyAccess);

// Growing-cell workload (adjacency-list appends). The reservation
// percentage is the ablation knob: 0 forces a relocation on every growth
// beyond capacity, larger values amortize them (§6.1's short-lived
// reservation mechanism).
void BM_TrunkAppend(benchmark::State& state) {
  const int reservation_pct = static_cast<int>(state.range(0));
  std::unique_ptr<MemoryTrunk> trunk;
  (void)MemoryTrunk::Create(TrunkOptions(reservation_pct), &trunk);
  const int kCells = 512;
  for (CellId id = 0; id < kCells; ++id) {
    (void)trunk->AddCell(id, Slice());
  }
  const char edge[8] = {0};
  CellId id = 0;
  for (auto _ : state) {
    if (!trunk->AppendToCell(id % kCells, Slice(edge, sizeof(edge))).ok()) {
      state.PauseTiming();
      (void)MemoryTrunk::Create(TrunkOptions(reservation_pct), &trunk);
      for (CellId v = 0; v < kCells; ++v) (void)trunk->AddCell(v, Slice());
      state.ResumeTiming();
    }
    ++id;
  }
  const auto stats = trunk->stats();
  state.counters["relocations"] =
      static_cast<double>(stats.expansions_relocated);
  state.counters["in_place"] = static_cast<double>(stats.expansions_in_place);
}
BENCHMARK(BM_TrunkAppend)->Arg(0)->Arg(25)->Arg(50)->Arg(100);

void BM_TrunkDefragment(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<MemoryTrunk> trunk;
    (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
    const std::string payload(256, 'd');
    for (CellId id = 0; id < 4000; ++id) {
      (void)trunk->AddCell(id, Slice(payload));
    }
    for (CellId id = 0; id < 4000; id += 2) {
      (void)trunk->RemoveCell(id);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(trunk->Defragment());
  }
}
BENCHMARK(BM_TrunkDefragment);

/// Multithreaded read-throughput sweep (PR 5's acceptance metric): N
/// threads hammer Get/Access on one shared trunk; aggregate ops/sec should
/// scale with threads now that readers share the trunk lock instead of
/// serializing on a std::mutex. Emitted to BENCH_read_throughput.json with
/// --json. Needs >= 8 hardware threads to demonstrate the full speedup; the
/// contention counters (read_lock_contended vs shared_reads) are the
/// core-count-independent evidence that readers never exclude each other.
void RunReadThroughputSweep(int argc, char* const* argv) {
  bench::JsonEmitter json("read_throughput", argc, argv);
  std::unique_ptr<MemoryTrunk> trunk;
  (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
  const std::string payload(128, 'r');
  const int kCells = 10000;
  for (CellId id = 0; id < kCells; ++id) {
    (void)trunk->AddCell(id, Slice(payload));
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("\n==== read throughput: concurrent trunk reads "
              "(%d hardware threads) ====\n", hw);
  for (const bool use_access : {false, true}) {
    const char* section = use_access ? "trunk_access" : "trunk_get";
    double base_mops = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      const std::uint64_t ops_per_thread = 400000;
      const auto before = trunk->stats();
      std::atomic<bool> go{false};
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          while (!go.load(std::memory_order_acquire)) {
          }
          std::string out;
          for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
            const CellId id =
                (static_cast<CellId>(t) * 7919 + i) % kCells;
            if (use_access) {
              MemoryTrunk::ConstAccessor accessor;
              (void)trunk->Access(id, &accessor);
              benchmark::DoNotOptimize(accessor.data().data());
            } else {
              (void)trunk->GetCell(id, &out);
              benchmark::DoNotOptimize(out.data());
            }
          }
        });
      }
      const auto start = std::chrono::steady_clock::now();
      go.store(true, std::memory_order_release);
      for (std::thread& w : workers) w.join();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const std::uint64_t total = ops_per_thread * threads;
      const double mops = static_cast<double>(total) / secs / 1e6;
      if (threads == 1) base_mops = mops;
      const auto after = trunk->stats();
      const std::uint64_t reads = after.shared_reads - before.shared_reads;
      const std::uint64_t contended =
          after.read_lock_contended - before.read_lock_contended;
      std::printf(
          "%-13s threads=%d  %8.2f Mops/s  speedup=%.2fx  "
          "contended=%llu/%llu shared acquisitions\n",
          section, threads, mops, base_mops > 0 ? mops / base_mops : 1.0,
          static_cast<unsigned long long>(contended),
          static_cast<unsigned long long>(reads));
      json.BeginRow(section);
      json.Add("threads", threads);
      json.Add("ops", total);
      json.Add("seconds", secs);
      json.Add("mops_per_sec", mops);
      json.Add("speedup_vs_1t", base_mops > 0 ? mops / base_mops : 1.0);
      json.Add("shared_reads", reads);
      json.Add("read_lock_contended", contended);
      json.Add("hardware_threads", hw);
    }
  }
}

/// Trunk footprint report: the memory-hierarchy meters on a churned trunk
/// (adds, removes, appends), with and without adjacency compression, so a
/// run shows at a glance how live/dead/resident bytes relate and what the
/// delta-varint codec buys (docs/memory_hierarchy.md). Rows land in
/// BENCH_trunk_footprint.json with --json.
void RunFootprintReport(int argc, char* const* argv) {
  bench::JsonEmitter json("trunk_footprint", argc, argv);
  std::printf("\n==== trunk footprint: live/dead/resident meters ====\n");
  for (const bool compress : {false, true}) {
    MemoryTrunk::Options options = TrunkOptions();
    options.compress_adjacency = compress;
    std::unique_ptr<MemoryTrunk> trunk;
    (void)MemoryTrunk::Create(options, &trunk);
    // Sorted adjacency cells (codec-eligible) plus churn that strands dead
    // bytes: every third cell removed, every fifth grown.
    for (CellId id = 0; id < 4000; ++id) {
      graph::NodeImage node;
      node.id = id;
      for (CellId k = 0; k < 32; ++k) node.out.push_back(id + k * 3);
      const std::string blob = graph::Graph::EncodeNode(node);
      (void)trunk->AddCell(id, Slice(blob));
    }
    for (CellId id = 0; id < 4000; id += 3) (void)trunk->RemoveCell(id);
    const char edge[8] = {0};
    for (CellId id = 1; id < 4000; id += 5) {
      (void)trunk->AppendToCell(id, Slice(edge, sizeof(edge)));
    }
    const auto stats = trunk->stats();
    const double dead_ratio =
        stats.used_bytes == 0
            ? 0.0
            : static_cast<double>(stats.dead_bytes) /
                  static_cast<double>(stats.used_bytes);
    std::printf(
        "compress=%d  live=%llu B  dead=%llu B (%.1f%% of used)  "
        "resident=%llu B  compressed_cells=%llu (%llu B stored)\n",
        compress ? 1 : 0, static_cast<unsigned long long>(stats.live_bytes),
        static_cast<unsigned long long>(stats.dead_bytes), 100 * dead_ratio,
        static_cast<unsigned long long>(stats.resident_bytes),
        static_cast<unsigned long long>(stats.compressed_cells),
        static_cast<unsigned long long>(stats.compressed_bytes));
    json.BeginRow("trunk_footprint");
    json.Add("compress_adjacency", compress);
    json.Add("live_cells", stats.live_cells);
    json.Add("live_bytes", stats.live_bytes);
    json.Add("dead_bytes", stats.dead_bytes);
    json.Add("dead_ratio", dead_ratio);
    json.Add("resident_bytes", stats.resident_bytes);
    json.Add("used_bytes", stats.used_bytes);
    json.Add("reserved_slack", stats.reserved_slack);
    json.Add("compressed_cells", stats.compressed_cells);
    json.Add("compressed_bytes", stats.compressed_bytes);
  }
}

}  // namespace
}  // namespace trinity::storage

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  trinity::storage::RunReadThroughputSweep(argc, argv);
  trinity::storage::RunFootprintReport(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
