// Microbenchmarks for §6.1's circular memory management: allocation,
// lookup, expansion with/without short-lived reservations, and
// defragmentation throughput.

#include <benchmark/benchmark.h>

#include "storage/memory_trunk.h"

namespace trinity::storage {
namespace {

MemoryTrunk::Options TrunkOptions(int reservation_pct = 50) {
  MemoryTrunk::Options options;
  options.capacity = 256ull << 20;
  options.reservation_pct = reservation_pct;
  return options;
}

void BM_TrunkAddCell(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  std::unique_ptr<MemoryTrunk> trunk;
  (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
  CellId id = 0;
  for (auto _ : state) {
    if (!trunk->AddCell(id++, Slice(payload)).ok()) {
      state.PauseTiming();
      (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
      id = 0;
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TrunkAddCell)->Arg(16)->Arg(128)->Arg(1024);

void BM_TrunkGetCell(benchmark::State& state) {
  std::unique_ptr<MemoryTrunk> trunk;
  (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'g');
  const int kCells = 10000;
  for (CellId id = 0; id < kCells; ++id) {
    (void)trunk->AddCell(id, Slice(payload));
  }
  std::string out;
  CellId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trunk->GetCell(id % kCells, &out));
    ++id;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TrunkGetCell)->Arg(16)->Arg(1024);

void BM_TrunkZeroCopyAccess(benchmark::State& state) {
  std::unique_ptr<MemoryTrunk> trunk;
  (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
  const std::string payload(1024, 'z');
  const int kCells = 10000;
  for (CellId id = 0; id < kCells; ++id) {
    (void)trunk->AddCell(id, Slice(payload));
  }
  CellId id = 0;
  for (auto _ : state) {
    MemoryTrunk::ConstAccessor accessor;
    (void)trunk->Access(id % kCells, &accessor);
    benchmark::DoNotOptimize(accessor.data().data());
    ++id;
  }
}
BENCHMARK(BM_TrunkZeroCopyAccess);

// Growing-cell workload (adjacency-list appends). The reservation
// percentage is the ablation knob: 0 forces a relocation on every growth
// beyond capacity, larger values amortize them (§6.1's short-lived
// reservation mechanism).
void BM_TrunkAppend(benchmark::State& state) {
  const int reservation_pct = static_cast<int>(state.range(0));
  std::unique_ptr<MemoryTrunk> trunk;
  (void)MemoryTrunk::Create(TrunkOptions(reservation_pct), &trunk);
  const int kCells = 512;
  for (CellId id = 0; id < kCells; ++id) {
    (void)trunk->AddCell(id, Slice());
  }
  const char edge[8] = {0};
  CellId id = 0;
  for (auto _ : state) {
    if (!trunk->AppendToCell(id % kCells, Slice(edge, sizeof(edge))).ok()) {
      state.PauseTiming();
      (void)MemoryTrunk::Create(TrunkOptions(reservation_pct), &trunk);
      for (CellId v = 0; v < kCells; ++v) (void)trunk->AddCell(v, Slice());
      state.ResumeTiming();
    }
    ++id;
  }
  const auto stats = trunk->stats();
  state.counters["relocations"] =
      static_cast<double>(stats.expansions_relocated);
  state.counters["in_place"] = static_cast<double>(stats.expansions_in_place);
}
BENCHMARK(BM_TrunkAppend)->Arg(0)->Arg(25)->Arg(50)->Arg(100);

void BM_TrunkDefragment(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<MemoryTrunk> trunk;
    (void)MemoryTrunk::Create(TrunkOptions(), &trunk);
    const std::string payload(256, 'd');
    for (CellId id = 0; id < 4000; ++id) {
      (void)trunk->AddCell(id, Slice(payload));
    }
    for (CellId id = 0; id < 4000; id += 2) {
      (void)trunk->RemoveCell(id);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(trunk->Defragment());
  }
}
BENCHMARK(BM_TrunkDefragment);

}  // namespace
}  // namespace trinity::storage

BENCHMARK_MAIN();
