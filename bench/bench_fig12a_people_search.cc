// Reproduces Fig 12(a): people-search response time (2-hop and 3-hop) as a
// function of average node degree on a Facebook-like social graph, 8
// machines. The paper reports 2-hop always < 100 ms and 3-hop at degree 13
// around 96 ms; the shape to reproduce is the superlinear growth of 3-hop
// latency with degree while 2-hop stays flat and low.

#include <cstdio>

#include "algos/people_search.h"
#include "bench_util.h"
#include "common/histogram.h"

namespace trinity {
namespace {

void Run(bench::JsonEmitter* json) {
  bench::PrintHeader("Figure 12(a)",
                     "people search on a social graph, 8 machines");
  std::printf("%8s %12s %12s %12s %12s %12s %10s\n", "degree", "nodes",
              "2hop_p50ms", "2hop_p99ms", "3hop_p50ms", "3hop_p99ms",
              "visited3");
  const std::uint64_t num_nodes = 20000;
  const int kQueries = 32;
  for (int degree = 10; degree <= 20; degree += 2) {
    auto cloud = bench::NewCloud(8);
    const auto edges = graph::Generators::PowerLaw(
        num_nodes, static_cast<double>(degree), 2.16, 12345 + degree);
    auto graph = bench::LoadGraph(cloud.get(), edges, /*with_names=*/true,
                                  /*track_inlinks=*/false, 12345);
    Histogram hop2, hop3;
    std::uint64_t visited3 = 0;
    Stopwatch watch;
    for (int q = 0; q < kQueries; ++q) {
      const CellId user = (q * 997) % num_nodes;
      algos::PeopleSearchOptions options;
      algos::PeopleSearchResult result;
      options.max_hops = 2;
      Status s =
          algos::RunPeopleSearch(graph.get(), user, "David", options, &result);
      TRINITY_CHECK(s.ok(), "people search failed");
      hop2.Add(result.stats.modeled_millis);
      options.max_hops = 3;
      s = algos::RunPeopleSearch(graph.get(), user, "David", options, &result);
      TRINITY_CHECK(s.ok(), "people search failed");
      hop3.Add(result.stats.modeled_millis);
      visited3 += result.stats.visited;
    }
    const double wall_seconds = watch.ElapsedMicros() / 1e6;
    std::printf("%8d %12llu %12.3f %12.3f %12.3f %12.3f %10llu\n", degree,
                static_cast<unsigned long long>(num_nodes),
                hop2.Percentile(50), hop2.Percentile(99),
                hop3.Percentile(50), hop3.Percentile(99),
                static_cast<unsigned long long>(visited3 / kQueries));
    json->BeginRow("fig12a");
    json->Add("degree", degree);
    json->Add("nodes", num_nodes);
    json->Add("queries", kQueries);
    json->Add("hop2_p50_modeled_millis", hop2.Percentile(50));
    json->Add("hop2_p99_modeled_millis", hop2.Percentile(99));
    json->Add("hop3_p50_modeled_millis", hop3.Percentile(50));
    json->Add("hop3_p99_modeled_millis", hop3.Percentile(99));
    json->Add("hop3_mean_visited", visited3 / kQueries);
    json->Add("wall_seconds", wall_seconds);
  }
  std::printf(
      "(paper: 2-hop < 10 ms throughout; 3-hop grows with degree, ~96 ms at "
      "degree 13 on 800M nodes)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  trinity::bench::JsonEmitter json("fig12a_people_search", argc, argv);
  trinity::Run(&json);
  return 0;
}
