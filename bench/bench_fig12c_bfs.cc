// Reproduces Fig 12(c): breadth-first search (the Graph500 kernel) on the
// same R-MAT graphs as Fig 12(b), sweeping node count and machine count.
// Note the paper's curious shape: BFS gets *slower* with more machines for a
// fixed graph (1B nodes: 128 s on 8 machines vs 644 s on 14) because BFS is
// communication-bound — more machines means more cut edges and more rounds'
// worth of traffic per useful vertex. The reproduction should show the same
// inversion: modeled time flat-to-increasing with machine count.

#include <cstdio>

#include "algos/bfs.h"
#include "bench_util.h"
#include "common/histogram.h"

namespace trinity {
namespace {

void Run(bench::JsonEmitter* json) {
  bench::PrintHeader("Figure 12(c)", "BFS seconds, R-MAT, degree 13");
  const int machine_counts[] = {8, 10, 12, 14};
  const std::uint64_t node_counts[] = {8192, 16384, 32768, 65536};
  std::printf("%10s", "nodes");
  for (int m : machine_counts) std::printf(" %11s%02d", "machines_", m);
  std::printf("\n");
  for (std::uint64_t nodes : node_counts) {
    const auto edges = graph::Generators::Rmat(nodes, 13.0, 42);
    std::printf("%10llu", static_cast<unsigned long long>(nodes));
    for (int machines : machine_counts) {
      auto cloud = bench::NewCloud(machines);
      auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                    /*track_inlinks=*/false);
      algos::BfsResult result;
      Stopwatch watch;
      Status s = algos::RunBfs(graph.get(), 0,
                               compute::TraversalEngine::Options{}, &result);
      const double wall_seconds = watch.ElapsedMicros() / 1e6;
      TRINITY_CHECK(s.ok(), "bfs failed");
      std::printf(" %13.4f", result.modeled_seconds);
      json->BeginRow("fig12c");
      json->Add("nodes", nodes);
      json->Add("machines", machines);
      json->Add("modeled_seconds", result.modeled_seconds);
      json->Add("wall_seconds", wall_seconds);
      json->Add("messages", result.stats.messages);
      json->Add("transfers", result.stats.transfers);
      json->Add("rounds", result.stats.rounds);
      json->Add("reached", result.reached);
    }
    std::printf("\n");
  }
  std::printf(
      "(paper: 1B nodes takes 128 s on 8 machines but 644 s on 14 — BFS is "
      "communication-bound, so more machines do not help)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  trinity::bench::JsonEmitter json("fig12c_bfs", argc, argv);
  trinity::Run(&json);
  return 0;
}
