// Reproduces Fig 12(b): one PageRank iteration (synchronous vertex-centric
// BSP) on R-MAT graphs, sweeping node count and machine count. The paper's
// shape: time per iteration grows linearly with graph size and shrinks as
// machines are added (1B nodes, 8 machines: < 60 s per iteration).
//
// A second sweep runs the same computation on a fixed 8-slave cluster with
// 1 vs 8 pool threads to measure the wall-clock effect of parallel
// superstep execution (§5.3) and to verify that the parallel run produces
// bit-identical ranks. Note the wall-clock speedup only manifests on a
// host with enough cores; the bit-identical check holds everywhere.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/histogram.h"

namespace trinity {
namespace {

void Run(bench::JsonEmitter* json) {
  bench::PrintHeader("Figure 12(b)",
                     "PageRank seconds/iteration, R-MAT, degree 13");
  const int machine_counts[] = {8, 10, 12, 14};
  const std::uint64_t node_counts[] = {8192, 16384, 32768, 65536};
  std::printf("%10s", "nodes");
  for (int m : machine_counts) std::printf(" %11s%02d", "machines_", m);
  std::printf("\n");
  for (std::uint64_t nodes : node_counts) {
    const auto edges = graph::Generators::Rmat(nodes, 13.0, 42);
    std::printf("%10llu", static_cast<unsigned long long>(nodes));
    for (int machines : machine_counts) {
      auto cloud = bench::NewCloud(machines);
      auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                    /*track_inlinks=*/false);
      algos::PageRankOptions options;
      options.iterations = 2;
      algos::PageRankResult result;
      Stopwatch watch;
      Status s = algos::RunPageRank(graph.get(), options, &result);
      const double wall_seconds = watch.ElapsedMicros() / 1e6;
      TRINITY_CHECK(s.ok(), "pagerank failed");
      std::printf(" %13.4f", result.seconds_per_iteration);
      json->BeginRow("fig12b");
      json->Add("nodes", nodes);
      json->Add("machines", machines);
      json->Add("modeled_seconds_per_iteration",
                result.seconds_per_iteration);
      json->Add("modeled_seconds", result.stats.modeled_seconds);
      json->Add("wall_seconds", wall_seconds);
      json->Add("messages", result.stats.messages);
      json->Add("transfers", result.stats.transfers);
      json->Add("bytes", result.stats.bytes);
    }
    std::printf("\n");
  }
  std::printf(
      "(modeled cluster seconds; paper: 1B nodes / 8 machines ~51 s per "
      "iteration, decreasing with machine count)\n");
  bench::PrintFooter();
}

/// 1 vs 8 pool threads on a fixed 8-slave cluster. Ranks must be
/// bit-identical (the parallel barrier merges inboxes in canonical order);
/// wall-clock speedup depends on host core count and is reported, not
/// asserted.
void RunThreadSweep(bench::JsonEmitter* json) {
  bench::PrintHeader("Superstep parallelism",
                     "PageRank wall-clock, 8 slaves, 1 vs 8 pool threads");
  const std::uint64_t nodes = 65536;
  const auto edges = graph::Generators::Rmat(nodes, 13.0, 42);
  std::printf("%8s %13s %13s %11s %13s\n", "threads", "wall_s", "modeled_s",
              "messages", "identical");
  std::string baseline_image;
  double baseline_wall = 0;
  for (int threads : {1, 8}) {
    auto cloud = bench::NewCloud(8);
    auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                  /*track_inlinks=*/false);
    algos::PageRankOptions options;
    options.iterations = 4;
    options.bsp.num_threads = threads;
    algos::PageRankResult result;
    Stopwatch watch;
    Status s = algos::RunPageRank(graph.get(), options, &result);
    const double wall_seconds = watch.ElapsedMicros() / 1e6;
    TRINITY_CHECK(s.ok(), "pagerank failed");
    // Serialize the ranks in sorted vertex order and compare the raw
    // double bytes — bit-identical, not just approximately equal.
    std::map<CellId, double> sorted(result.ranks.begin(),
                                    result.ranks.end());
    std::string image;
    image.reserve(sorted.size() * 16);
    for (const auto& [v, rank] : sorted) {
      image.append(reinterpret_cast<const char*>(&v), sizeof(v));
      image.append(reinterpret_cast<const char*>(&rank), sizeof(rank));
    }
    bool identical = true;
    if (baseline_image.empty()) {
      baseline_image = std::move(image);
      baseline_wall = wall_seconds;
    } else {
      identical = image.size() == baseline_image.size() &&
                  std::memcmp(image.data(), baseline_image.data(),
                              image.size()) == 0;
      TRINITY_CHECK(identical, "parallel ranks diverge from sequential");
    }
    std::printf("%8d %13.4f %13.4f %11llu %13s\n", threads, wall_seconds,
                result.stats.modeled_seconds,
                static_cast<unsigned long long>(result.stats.messages),
                identical ? "yes" : "NO");
    json->BeginRow("thread_sweep");
    json->Add("threads", threads);
    json->Add("nodes", nodes);
    json->Add("machines", 8);
    json->Add("wall_seconds", wall_seconds);
    json->Add("modeled_seconds", result.stats.modeled_seconds);
    json->Add("messages", result.stats.messages);
    json->Add("bytes", result.stats.bytes);
    json->Add("ranks_bit_identical", identical);
    if (threads != 1) {
      json->Add("speedup_vs_1_thread", baseline_wall / wall_seconds);
      std::printf("(speedup with 8 threads: %.2fx; expect >3x on an 8-core "
                  "host, ~1x on a single-core container)\n",
                  baseline_wall / wall_seconds);
    }
  }
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  trinity::bench::JsonEmitter json("fig12b_pagerank", argc, argv);
  trinity::Run(&json);
  trinity::RunThreadSweep(&json);
  return 0;
}
