// Reproduces Fig 12(b): one PageRank iteration (synchronous vertex-centric
// BSP) on R-MAT graphs, sweeping node count and machine count. The paper's
// shape: time per iteration grows linearly with graph size and shrinks as
// machines are added (1B nodes, 8 machines: < 60 s per iteration).

#include <cstdio>

#include "algos/pagerank.h"
#include "bench_util.h"

namespace trinity {
namespace {

void Run() {
  bench::PrintHeader("Figure 12(b)",
                     "PageRank seconds/iteration, R-MAT, degree 13");
  const int machine_counts[] = {8, 10, 12, 14};
  const std::uint64_t node_counts[] = {8192, 16384, 32768, 65536};
  std::printf("%10s", "nodes");
  for (int m : machine_counts) std::printf(" %11s%02d", "machines_", m);
  std::printf("\n");
  for (std::uint64_t nodes : node_counts) {
    const auto edges = graph::Generators::Rmat(nodes, 13.0, 42);
    std::printf("%10llu", static_cast<unsigned long long>(nodes));
    for (int machines : machine_counts) {
      auto cloud = bench::NewCloud(machines);
      auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                    /*track_inlinks=*/false);
      algos::PageRankOptions options;
      options.iterations = 2;
      algos::PageRankResult result;
      Status s = algos::RunPageRank(graph.get(), options, &result);
      TRINITY_CHECK(s.ok(), "pagerank failed");
      std::printf(" %13.4f", result.seconds_per_iteration);
    }
    std::printf("\n");
  }
  std::printf(
      "(modeled cluster seconds; paper: 1B nodes / 8 machines ~51 s per "
      "iteration, decreasing with machine count)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main() {
  trinity::Run();
  return 0;
}
