// Reproduces Fig 8(b): distance-oracle estimation accuracy vs number of
// landmarks for three landmark-selection strategies. Shape to reproduce:
// global betweenness best, *local* betweenness (computed per machine on its
// partition — Trinity's new offline paradigm, §5.5) very close to it, and
// largest-degree clearly worst; accuracy rises with landmark count.

#include <cstdio>

#include "algos/landmark.h"
#include "bench_util.h"

namespace trinity {
namespace {

void Run() {
  bench::PrintHeader("Figure 8(b)",
                     "distance oracle accuracy vs #landmarks (4 machines)");
  auto cloud = bench::NewCloud(4);
  // Community-structured social graph: inter-community distances dominate,
  // and the bridge vertices that matter for them have high betweenness but
  // unremarkable degree — the regime where Fig 8(b)'s ordering appears.
  const auto edges = graph::Generators::Community(
      /*num_communities=*/24, /*nodes_per_community=*/250,
      /*intra_degree=*/8.0, /*inter_links_per_community=*/2.0, 777);
  auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                /*track_inlinks=*/false);
  std::printf("%12s %16s %18s %19s\n", "landmarks", "largest_degree",
              "local_betweenness", "global_betweenness");
  for (int landmarks : {5, 10, 20, 40, 80}) {
    double accuracy[3] = {0, 0, 0};
    const algos::LandmarkStrategy strategies[3] = {
        algos::LandmarkStrategy::kLargestDegree,
        algos::LandmarkStrategy::kLocalBetweenness,
        algos::LandmarkStrategy::kGlobalBetweenness,
    };
    for (int i = 0; i < 3; ++i) {
      algos::DistanceOracle::Options options;
      options.strategy = strategies[i];
      options.num_landmarks = landmarks;
      options.betweenness_samples = 48;
      algos::DistanceOracle oracle;
      Status s = algos::DistanceOracle::Build(graph.get(), options, &oracle);
      TRINITY_CHECK(s.ok(), "oracle build failed");
      accuracy[i] = oracle.Evaluate(120, 5).accuracy_pct;
    }
    std::printf("%12d %15.1f%% %17.1f%% %18.1f%%\n", landmarks, accuracy[0],
                accuracy[1], accuracy[2]);
  }
  std::printf(
      "(paper: global betweenness best, local betweenness nearly matches it "
      "at a fraction of the cost, largest degree worst)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main() {
  trinity::Run();
  return 0;
}
