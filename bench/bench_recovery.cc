// Recovery benchmark: hot-standby promotion failover versus cold reload
// from the TFS snapshot tier. One machine of eight is killed after loading
// a keyspace; the sweep reports how the cluster gets back to full health
// under replication factors k = 0 (cold reload), 1 and 2.
//
// Reported per row:
//  * wall_recovery_micros        — host time for the DetectAndRecover sweep
//  * promote_micros              — simulated time-to-promote (metadata flip)
//  * full_replication_micros     — simulated time until the replication
//                                  factor is restored across survivors
//  * bytes_rereplicated          — background repair traffic
//  * degraded_reads              — reads served by replicas before the sweep
//  * tfs_files_read              — cold-tier reads during recovery (zero on
//                                  the hot-standby path)
//  * replica_memory_bytes        — memory overhead of the standby copies

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "bench_util.h"
#include "net/fault_injector.h"
#include "tfs/tfs.h"

namespace trinity {
namespace {

void Run(bench::JsonEmitter* json) {
  bench::PrintHeader("Recovery",
                     "failover after 1-of-8 machine loss, hot vs cold");
  std::printf("%7s %8s %12s %14s %16s %14s %12s %12s\n", "cells", "k",
              "wall_us", "promote_us", "full_repl_us", "repl_bytes",
              "tfs_reads", "degraded");
  const std::size_t kPayload = 256;
  for (std::uint64_t cells : {2048ULL, 8192ULL}) {
    for (int k : {0, 1, 2}) {
      tfs::Tfs::Options tfs_options;
      tfs_options.root = "/tmp/trinity_bench_recovery_" +
                         std::to_string(cells) + "_" + std::to_string(k);
      std::filesystem::remove_all(tfs_options.root);
      std::unique_ptr<tfs::Tfs> tfs_;
      TRINITY_CHECK(tfs::Tfs::Open(tfs_options, &tfs_).ok(), "tfs open");

      cloud::MemoryCloud::Options options;
      options.num_slaves = 8;
      options.p_bits = 6;
      options.tfs = tfs_.get();
      options.replication_factor = k;
      std::unique_ptr<cloud::MemoryCloud> cloud;
      TRINITY_CHECK(cloud::MemoryCloud::Create(options, &cloud).ok(),
                    "cloud create");

      const std::string payload(kPayload, 'r');
      for (CellId id = 0; id < cells; ++id) {
        TRINITY_CHECK(cloud->PutCell(id, Slice(payload)).ok(), "load");
      }
      // The cold tier always exists; the hot path must simply never touch it.
      TRINITY_CHECK(cloud->SaveSnapshot().ok(), "snapshot");
      const std::uint64_t replica_bytes = cloud->ReplicaMemoryBytes();

      const MachineId victim = 3;
      TRINITY_CHECK(cloud->FailMachine(victim).ok(), "fail");

      // Degraded window: reads issued between the failure and the sweep are
      // served by in-sync replicas (k > 0) or fail over to recovery (k = 0,
      // where the first touch triggers the cold reload inline).
      std::uint64_t degraded_ok = 0;
      if (k > 0) {
        for (CellId id = 0; id < 100; ++id) {
          std::string out;
          if (cloud->GetCell(id, &out).ok()) ++degraded_ok;
        }
      }

      const tfs::Tfs::Stats tfs_before = tfs_->stats();
      Stopwatch watch;
      cloud->DetectAndRecover();
      const double wall_micros = watch.ElapsedMicros();
      const tfs::Tfs::Stats tfs_after = tfs_->stats();
      const net::RecoveryStats rs = cloud->recovery_stats();

      // Everything must be readable again, whichever path recovered it.
      for (CellId id = 0; id < cells; id += 97) {
        std::string out;
        TRINITY_CHECK(cloud->GetCell(id, &out).ok(), "post-recovery read");
      }

      const std::uint64_t tfs_reads =
          tfs_after.files_read - tfs_before.files_read;
      std::printf("%7llu %8d %12.0f %14llu %16llu %14llu %12llu %12llu\n",
                  static_cast<unsigned long long>(cells), k, wall_micros,
                  static_cast<unsigned long long>(rs.last_promote_micros),
                  static_cast<unsigned long long>(
                      rs.last_full_replication_micros),
                  static_cast<unsigned long long>(rs.bytes_rereplicated),
                  static_cast<unsigned long long>(tfs_reads),
                  static_cast<unsigned long long>(rs.degraded_reads));
      json->BeginRow("recovery");
      json->Add("cells", cells);
      json->Add("replication_factor", k);
      json->Add("wall_recovery_micros", wall_micros);
      json->Add("promote_micros", rs.last_promote_micros);
      json->Add("full_replication_micros", rs.last_full_replication_micros);
      json->Add("bytes_rereplicated", rs.bytes_rereplicated);
      json->Add("trunks_rereplicated", rs.trunks_rereplicated);
      json->Add("degraded_reads", rs.degraded_reads);
      json->Add("degraded_reads_ok", degraded_ok);
      json->Add("fenced_writes", rs.fenced_writes);
      json->Add("tfs_files_read", tfs_reads);
      json->Add("tfs_fallback_reloads", rs.tfs_fallback_reloads);
      json->Add("promotions", rs.promotions);
      json->Add("replica_memory_bytes", replica_bytes);
      json->Add("primary_memory_bytes", cloud->MemoryFootprintBytes());
      std::filesystem::remove_all(tfs_options.root);
    }
  }
  std::printf(
      "(hot-standby promotion is a metadata flip — zero TFS reads; cold "
      "k=0 reloads every lost trunk from the snapshot tier)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  trinity::bench::JsonEmitter json("recovery", argc, argv);
  trinity::Run(&json);
  return 0;
}
