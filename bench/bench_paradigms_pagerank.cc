// Computation-paradigm comparison (paper §5.3 discussion + Table 1 framing):
// the same PageRank computed three ways —
//   * Trinity's restrictive vertex-centric BSP on the memory cloud,
//   * a Giraph-like heap-object BSP engine,
//   * a GraphChi-like out-of-core asynchronous engine (single PC, real
//     shard files, sequential I/O accounting).
// Shape to reproduce: the memory cloud wins; the disk engine is competitive
// per-iteration on one machine but cannot parallelize across a cluster; the
// heap-object engine pays the runtime-object tax.

#include <cstdio>

#include "algos/pagerank.h"
#include "baseline/diskstream_engine.h"
#include "baseline/heap_engine.h"
#include "bench_util.h"

namespace trinity {
namespace {

void Run() {
  bench::PrintHeader("Paradigms (section 5.3)",
                     "PageRank under three computation models");
  std::printf("%10s %16s %16s %18s\n", "nodes", "trinity_s/iter",
              "giraph_s/iter", "graphchi_s/iter");
  for (std::uint64_t nodes : {16384ull, 32768ull, 65536ull}) {
    const auto edges = graph::Generators::Rmat(nodes, 13.0, 42);

    // Trinity BSP on 8 machines.
    auto cloud = bench::NewCloud(8);
    auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                  /*track_inlinks=*/false);
    algos::PageRankOptions pr;
    pr.iterations = 3;
    algos::PageRankResult trinity_result;
    Status s = algos::RunPageRank(graph.get(), pr, &trinity_result);
    TRINITY_CHECK(s.ok(), "trinity pagerank failed");

    // Giraph-like heap-object engine, same machine count.
    baseline::HeapEngine::Options heap_options;
    heap_options.num_machines = 8;
    heap_options.iterations = 3;
    baseline::HeapEngine heap(heap_options);
    TRINITY_CHECK(heap.LoadGraph(edges).ok(), "heap load failed");
    baseline::HeapEngine::RunStats heap_stats;
    TRINITY_CHECK(heap.RunPageRank(&heap_stats).ok(), "heap pagerank failed");

    // GraphChi-like disk streaming on one PC.
    baseline::DiskStreamEngine::Options disk_options;
    disk_options.num_shards = 8;
    baseline::DiskStreamEngine disk(disk_options);
    TRINITY_CHECK(disk.LoadGraph(edges).ok(), "disk load failed");
    baseline::DiskStreamEngine::RunStats disk_stats;
    TRINITY_CHECK(disk.RunPageRank(3, 0.85, &disk_stats).ok(),
                  "disk pagerank failed");

    std::printf("%10llu %16.4f %16.4f %18.4f\n",
                static_cast<unsigned long long>(nodes),
                trinity_result.seconds_per_iteration,
                heap_stats.seconds_per_iteration,
                disk_stats.seconds_per_iteration);
  }
  std::printf(
      "(paper: the disk engine trades expressiveness for sequential I/O on "
      "one PC; the memory cloud supports every paradigm and scales out)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main() {
  trinity::Run();
  return 0;
}
