// Computation-paradigm comparison (paper §5.3 discussion + Table 1 framing):
// the same PageRank computed four ways —
//   * Trinity's restrictive vertex-centric BSP on the memory cloud,
//   * the async engine's prioritized delta formulation (same memory cloud,
//     no superstep barrier — docs/async_scheduling.md),
//   * a Giraph-like heap-object BSP engine,
//   * a GraphChi-like out-of-core asynchronous engine (single PC, real
//     shard files, sequential I/O accounting).
// Shape to reproduce: the memory cloud wins; the disk engine is competitive
// per-iteration on one machine but cannot parallelize across a cluster; the
// heap-object engine pays the runtime-object tax.

#include <cstdio>

#include "algos/pagerank.h"
#include "baseline/diskstream_engine.h"
#include "baseline/heap_engine.h"
#include "bench_util.h"

namespace trinity {
namespace {

void Run(bench::JsonEmitter& json) {
  bench::PrintHeader("Paradigms (section 5.3)",
                     "PageRank under four computation models");
  std::printf("%10s %16s %16s %16s %18s\n", "nodes", "trinity_s/iter",
              "delta_async_s", "giraph_s/iter", "graphchi_s/iter");
  for (std::uint64_t nodes : {16384ull, 32768ull, 65536ull}) {
    const auto edges = graph::Generators::Rmat(nodes, 13.0, 42);

    // Trinity BSP on 8 machines.
    auto cloud = bench::NewCloud(8);
    auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                  /*track_inlinks=*/false);
    algos::PageRankOptions pr;
    pr.iterations = 3;
    algos::PageRankResult trinity_result;
    Status s = algos::RunPageRank(graph.get(), pr, &trinity_result);
    TRINITY_CHECK(s.ok(), "trinity pagerank failed");

    // Same memory cloud, asynchronous prioritized delta formulation. No
    // barrier to amortize, so the comparable number is the whole run, not a
    // per-iteration slice; epsilon is loose enough to do roughly the work
    // of a few sweeps.
    algos::DeltaPageRankResult delta_result;
    {
      auto delta_cloud = bench::NewCloud(8);
      auto delta_graph = bench::LoadGraph(delta_cloud.get(), edges, false,
                                          /*track_inlinks=*/false);
      algos::DeltaPageRankOptions delta;
      delta.epsilon = 1e-6;
      delta.async.scheduler = compute::SchedulerMode::kPriority;
      s = algos::RunDeltaPageRank(delta_graph.get(), delta, &delta_result);
      TRINITY_CHECK(s.ok(), "delta pagerank failed");
    }

    // Giraph-like heap-object engine, same machine count.
    baseline::HeapEngine::Options heap_options;
    heap_options.num_machines = 8;
    heap_options.iterations = 3;
    baseline::HeapEngine heap(heap_options);
    TRINITY_CHECK(heap.LoadGraph(edges).ok(), "heap load failed");
    baseline::HeapEngine::RunStats heap_stats;
    TRINITY_CHECK(heap.RunPageRank(&heap_stats).ok(), "heap pagerank failed");

    // GraphChi-like disk streaming on one PC.
    baseline::DiskStreamEngine::Options disk_options;
    disk_options.num_shards = 8;
    baseline::DiskStreamEngine disk(disk_options);
    TRINITY_CHECK(disk.LoadGraph(edges).ok(), "disk load failed");
    baseline::DiskStreamEngine::RunStats disk_stats;
    TRINITY_CHECK(disk.RunPageRank(3, 0.85, &disk_stats).ok(),
                  "disk pagerank failed");

    std::printf("%10llu %16.4f %16.4f %16.4f %18.4f\n",
                static_cast<unsigned long long>(nodes),
                trinity_result.seconds_per_iteration,
                delta_result.stats.modeled_seconds,
                heap_stats.seconds_per_iteration,
                disk_stats.seconds_per_iteration);

    json.BeginRow("paradigms");
    json.Add("nodes", nodes);
    json.Add("trinity_seconds_per_iteration",
             trinity_result.seconds_per_iteration);
    json.Add("delta_async_seconds", delta_result.stats.modeled_seconds);
    json.Add("delta_async_updates", delta_result.stats.updates);
    json.Add("delta_async_coalesced", delta_result.stats.coalesced_updates);
    json.Add("giraph_seconds_per_iteration",
             heap_stats.seconds_per_iteration);
    json.Add("graphchi_seconds_per_iteration",
             disk_stats.seconds_per_iteration);
  }
  std::printf(
      "(paper: the disk engine trades expressiveness for sequential I/O on "
      "one PC; the memory cloud supports every paradigm — barriered or "
      "prioritized-asynchronous — and scales out)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  trinity::bench::JsonEmitter json("paradigms_pagerank", argc, argv);
  trinity::Run(json);
  return 0;
}
