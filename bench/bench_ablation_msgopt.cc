// Ablation of §5.4's message-passing optimizations for the restrictive
// vertex-centric model. Sweeps delivery policy and hub fraction and reports
// wire deliveries + peak buffered bytes per machine, plus the paper's
// Type A/B memory-residency formula at Facebook scale.

#include <cstdio>

#include "bench_util.h"
#include "compute/message_optimizer.h"

namespace trinity {
namespace {

const char* PolicyName(compute::DeliveryPolicy policy) {
  switch (policy) {
    case compute::DeliveryPolicy::kBufferAll:
      return "buffer_all";
    case compute::DeliveryPolicy::kOnDemand:
      return "on_demand";
    case compute::DeliveryPolicy::kHubBuffered:
      return "hub_only";
    case compute::DeliveryPolicy::kHubPlusPartition:
      return "hub+partition";
  }
  return "?";
}

void Run() {
  bench::PrintHeader("Ablation (section 5.4)",
                     "message delivery policies, power-law graph, 8 machines");
  auto cloud = bench::NewCloud(8);
  const auto edges = graph::Generators::PowerLaw(20000, 13.0, 2.16, 4242);
  auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                /*track_inlinks=*/true);

  std::printf("%-14s %8s %12s %12s %14s %10s\n", "policy", "hub%",
              "logical", "delivered", "peak_buf_KB", "hub_cov");
  const compute::DeliveryPolicy policies[] = {
      compute::DeliveryPolicy::kOnDemand,
      compute::DeliveryPolicy::kHubBuffered,
      compute::DeliveryPolicy::kHubPlusPartition,
      compute::DeliveryPolicy::kBufferAll,
  };
  for (auto policy : policies) {
    const double hub_fractions[] = {0.0, 0.01, 0.02, 0.05};
    const bool uses_hubs =
        policy == compute::DeliveryPolicy::kHubBuffered ||
        policy == compute::DeliveryPolicy::kHubPlusPartition;
    for (double hub : hub_fractions) {
      if (!uses_hubs && hub != 0.0) continue;
      if (uses_hubs && hub == 0.0) continue;
      compute::MessageOptimizer::Options options;
      options.policy = policy;
      options.hub_fraction = hub;
      options.num_partitions = 8;
      compute::MessagePlanReport report;
      Status s = compute::MessageOptimizer::Analyze(graph.get(), 0, options,
                                                    &report);
      TRINITY_CHECK(s.ok(), "analysis failed");
      std::printf("%-14s %7.1f%% %12llu %12llu %14.1f %9.1f%%\n",
                  PolicyName(policy), hub * 100,
                  static_cast<unsigned long long>(report.logical_messages),
                  static_cast<unsigned long long>(report.delivered_messages),
                  static_cast<double>(report.peak_buffer_bytes) / 1024.0,
                  report.hub_coverage * 100);
    }
  }
  // Partitioning-quality ablation (DESIGN.md design choice #2): naive
  // contiguous partitions vs the multilevel partitioner over the
  // shared-sender graph, hub fraction fixed at 1%.
  {
    compute::MessageOptimizer::Options options;
    options.policy = compute::DeliveryPolicy::kHubPlusPartition;
    options.hub_fraction = 0.01;
    options.num_partitions = 8;
    compute::MessagePlanReport contiguous, multilevel;
    Status s = compute::MessageOptimizer::Analyze(graph.get(), 0, options,
                                                  &contiguous);
    TRINITY_CHECK(s.ok(), "analysis failed");
    options.use_multilevel_partition = true;
    s = compute::MessageOptimizer::Analyze(graph.get(), 0, options,
                                           &multilevel);
    TRINITY_CHECK(s.ok(), "analysis failed");
    std::printf(
        "\npartition quality (hub 1%%, 8 partitions): contiguous delivers "
        "%llu, multilevel delivers %llu (%.1f%% fewer)\n",
        static_cast<unsigned long long>(contiguous.delivered_messages),
        static_cast<unsigned long long>(multilevel.delivered_messages),
        100.0 *
            (1.0 - static_cast<double>(multilevel.delivered_messages) /
                       static_cast<double>(contiguous.delivered_messages)));
  }
  std::printf(
      "(paper: ~1%% hub vertices cover ~72.8%% of message needs on a "
      "P(k)~1.16 k^-2.16 graph)\n");

  // The §5.4 memory-residency formula at the paper's Facebook example.
  const auto residency = compute::MessageOptimizer::Residency(
      800'000'000ull, 10'400'000'000ull, 8, 8, 8, 0.1);
  std::printf(
      "\nType A/B residency (V=800M, E=10.4B, k=l=m=8, p=0.1):\n"
      "  full resident S  = %.1f GB\n"
      "  offline mode S'  = %.1f GB\n"
      "  saved            = %.1f GB (paper: ~78 GB)\n",
      residency.full_bytes / 1e9, residency.offline_bytes / 1e9,
      residency.saved_bytes / 1e9);
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main() {
  trinity::Run();
  return 0;
}
