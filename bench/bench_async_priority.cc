// Scheduler ablation for the asynchronous engine (docs/async_scheduling.md):
// delta PageRank run under the three VertexScheduler modes — async-fifo,
// async-sweep, async-priority — against the BSP power-iteration fixed point
// as the correctness anchor. Shape to reproduce (GraphLab's prioritized
// scheduling result): every mode converges to the same fixed point, and
// ordering work by |residual| converges with a fraction of async-fifo's
// processed updates (claimed: >= 2x fewer on at least one graph). A second
// section runs the same ablation for SSSP's improvement-priority scheduling.

#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "bench_util.h"

namespace trinity {
namespace {

const char* ModeName(compute::SchedulerMode mode) {
  switch (mode) {
    case compute::SchedulerMode::kFifo:
      return "async-fifo";
    case compute::SchedulerMode::kPriority:
      return "async-priority";
    case compute::SchedulerMode::kSweep:
      return "async-sweep";
  }
  return "?";
}

double MaxAbsDiff(const std::unordered_map<CellId, double>& a,
                  const std::unordered_map<CellId, double>& b) {
  double max_diff = 0;
  for (const auto& [vertex, value] : a) {
    auto it = b.find(vertex);
    const double other = it == b.end() ? 0.0 : it->second;
    max_diff = std::max(max_diff, std::abs(value - other));
  }
  return max_diff;
}

struct GraphSpec {
  const char* name;
  graph::Generators::EdgeList edges;
};

void RunPageRankAblation(bench::JsonEmitter& json) {
  bench::PrintHeader("Scheduler ablation",
                     "delta PageRank: fifo vs sweep vs priority");
  // Convergence tolerance against the BSP anchor. The delta runs truncate
  // residuals below kEpsilon; the total truncated mass is bounded by
  // n * kEpsilon / (1 - d), far below kTolerance for these sizes.
  constexpr double kEpsilon = 1e-12;
  constexpr double kTolerance = 5e-7;
  bool claim_reproduced = false;
  GraphSpec graphs[] = {
      {"rmat_16k", graph::Generators::Rmat(16384, 8.0, 42)},
      {"powerlaw_16k", graph::Generators::PowerLaw(16384, 4.0, 2.16, 7)},
  };
  std::printf("%14s %16s %10s %10s %10s %10s %10s %12s\n", "graph", "mode",
              "updates", "messages", "coalesced", "dropped", "vs_fifo",
              "max_abs_diff");
  for (const GraphSpec& spec : graphs) {
    // BSP anchor: power iteration to convergence on the same cluster shape.
    algos::PageRankResult anchor;
    {
      auto cloud = bench::NewCloud(8);
      auto graph = bench::LoadGraph(cloud.get(), spec.edges, false,
                                    /*track_inlinks=*/false);
      algos::PageRankOptions pr;
      pr.iterations = 200;
      pr.convergence_epsilon = 1e-10;
      Status s = algos::RunPageRank(graph.get(), pr, &anchor);
      TRINITY_CHECK(s.ok(), "bsp anchor failed");
      json.BeginRow("pagerank");
      json.Add("graph", std::string(spec.name));
      json.Add("mode", std::string("bsp"));
      json.Add("supersteps", static_cast<std::uint64_t>(
                                 anchor.stats.supersteps));
      json.Add("messages", anchor.stats.messages);
      json.Add("wire_bytes", anchor.stats.bytes);
      json.Add("modeled_seconds", anchor.stats.modeled_seconds);
    }
    std::uint64_t fifo_updates = 0;
    for (compute::SchedulerMode mode :
         {compute::SchedulerMode::kFifo, compute::SchedulerMode::kSweep,
          compute::SchedulerMode::kPriority}) {
      auto cloud = bench::NewCloud(8);
      auto graph = bench::LoadGraph(cloud.get(), spec.edges, false,
                                    /*track_inlinks=*/false);
      algos::DeltaPageRankOptions options;
      options.epsilon = kEpsilon;
      options.async.scheduler = mode;
      options.async.batch_size = 16;
      algos::DeltaPageRankResult result;
      Status s = algos::RunDeltaPageRank(graph.get(), options, &result);
      TRINITY_CHECK(s.ok(), "delta pagerank failed");
      const double max_diff = MaxAbsDiff(anchor.ranks, result.ranks);
      const bool converged = max_diff < kTolerance;
      if (mode == compute::SchedulerMode::kFifo) {
        fifo_updates = result.stats.updates;
      }
      const double vs_fifo =
          result.stats.updates > 0
              ? static_cast<double>(fifo_updates) /
                    static_cast<double>(result.stats.updates)
              : 0.0;
      if (mode == compute::SchedulerMode::kPriority && converged &&
          vs_fifo >= 2.0) {
        claim_reproduced = true;
      }
      std::printf("%14s %16s %10llu %10llu %10llu %10llu %9.2fx %12.3g\n",
                  spec.name, ModeName(mode),
                  static_cast<unsigned long long>(result.stats.updates),
                  static_cast<unsigned long long>(result.stats.messages),
                  static_cast<unsigned long long>(
                      result.stats.coalesced_updates),
                  static_cast<unsigned long long>(
                      result.stats.epsilon_dropped),
                  vs_fifo, max_diff);
      json.BeginRow("pagerank");
      json.Add("graph", std::string(spec.name));
      json.Add("mode", std::string(ModeName(mode)));
      json.Add("updates", result.stats.updates);
      json.Add("messages", result.stats.messages);
      json.Add("coalesced_updates", result.stats.coalesced_updates);
      json.Add("epsilon_dropped", result.stats.epsilon_dropped);
      json.Add("heap_ops", result.stats.heap_ops);
      json.Add("wire_bytes", result.stats.wire_bytes);
      json.Add("wire_transfers", result.stats.wire_transfers);
      json.Add("safra_probes", static_cast<std::uint64_t>(
                                   result.stats.safra_probes));
      json.Add("modeled_seconds", result.stats.modeled_seconds);
      json.Add("updates_vs_fifo", vs_fifo);
      json.Add("max_abs_diff", max_diff);
      json.Add("converged", converged);
    }
  }
  json.BeginRow("claim");
  json.Add("claim", std::string("async-priority converges delta pagerank "
                                "with >= 2x fewer updates than async-fifo "
                                "on at least one graph"));
  json.Add("claim_reproduced", claim_reproduced);
  std::printf("claim (priority >= 2x fewer updates than fifo, converged): "
              "%s\n",
              claim_reproduced ? "REPRODUCED" : "NOT reproduced");
  bench::PrintFooter();
}

void RunSsspAblation(bench::JsonEmitter& json) {
  bench::PrintHeader("Scheduler ablation",
                     "SSSP: classic fifo vs delta-scheduled modes");
  const auto edges = graph::Generators::PowerLaw(16384, 8.0, 2.16, 21);
  std::printf("%18s %10s %10s %10s %10s\n", "variant", "updates", "messages",
              "coalesced", "dropped");
  auto emit = [&](const char* variant,
                  const compute::AsyncEngine::RunStats& stats,
                  bool matches) {
    std::printf("%18s %10llu %10llu %10llu %10llu\n", variant,
                static_cast<unsigned long long>(stats.updates),
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.coalesced_updates),
                static_cast<unsigned long long>(stats.epsilon_dropped));
    json.BeginRow("sssp");
    json.Add("variant", std::string(variant));
    json.Add("updates", stats.updates);
    json.Add("messages", stats.messages);
    json.Add("coalesced_updates", stats.coalesced_updates);
    json.Add("epsilon_dropped", stats.epsilon_dropped);
    json.Add("heap_ops", stats.heap_ops);
    json.Add("wire_bytes", stats.wire_bytes);
    json.Add("matches_classic", matches);
  };
  algos::SsspResult classic;
  {
    auto cloud = bench::NewCloud(8);
    auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                  /*track_inlinks=*/false);
    algos::SsspOptions options;
    Status s = algos::RunSssp(graph.get(), 0, options, &classic);
    TRINITY_CHECK(s.ok(), "classic sssp failed");
    emit("classic-fifo", classic.stats, true);
  }
  for (compute::SchedulerMode mode :
       {compute::SchedulerMode::kFifo, compute::SchedulerMode::kSweep,
        compute::SchedulerMode::kPriority}) {
    auto cloud = bench::NewCloud(8);
    auto graph = bench::LoadGraph(cloud.get(), edges, false,
                                  /*track_inlinks=*/false);
    algos::SsspOptions options;
    options.delta_scheduling = true;
    options.async.scheduler = mode;
    algos::SsspResult result;
    Status s = algos::RunSssp(graph.get(), 0, options, &result);
    TRINITY_CHECK(s.ok(), "delta sssp failed");
    bool matches = result.distances.size() == classic.distances.size();
    if (matches) {
      for (const auto& [vertex, distance] : classic.distances) {
        auto it = result.distances.find(vertex);
        if (it == result.distances.end() || it->second != distance) {
          matches = false;
          break;
        }
      }
    }
    TRINITY_CHECK(matches, "delta sssp diverged from classic distances");
    const std::string variant = std::string("delta-") + ModeName(mode);
    emit(variant.c_str(), result.stats, matches);
  }
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main(int argc, char** argv) {
  trinity::bench::JsonEmitter json("async_priority", argc, argv);
  trinity::RunPageRankAblation(json);
  trinity::RunSsspAblation(json);
  return 0;
}
