// Reproduces Fig 14(a): parallel speedup of subgraph-match queries on two
// real-life graphs — Wordnet and the US patent network — as machines are
// added (synthetic stand-ins with matching shape; see DESIGN.md). Shape to
// reproduce: query time drops steadily as machine count grows.

#include <cstdio>

#include "algos/subgraph_match.h"
#include "bench_util.h"

namespace trinity {
namespace {

double RunQueries(graph::Graph* graph, int num_queries,
                  std::uint64_t seed_base, std::uint32_t num_labels) {
  // Exhaustive matching (no early termination): every machine-count
  // configuration does the same total work, so the modeled time directly
  // measures how well that work parallelizes.
  algos::SubgraphMatcher::Options options;
  options.num_labels = num_labels;  // Loose labels: substantial work.
  options.max_results = 1ull << 40;
  options.max_partials = 400000;
  options.round_budget = 1ull << 40;
  algos::SubgraphMatcher matcher(graph, options);
  double total_ms = 0;
  for (int q = 0; q < num_queries; ++q) {
    algos::SubgraphMatcher::Pattern pattern;
    Status s = matcher.GenerateDfsQuery(6, seed_base + q, &pattern);
    TRINITY_CHECK(s.ok(), "query generation failed");
    algos::SubgraphMatcher::Result result;
    s = matcher.Match(pattern, &result);
    TRINITY_CHECK(s.ok(), "match failed");
    total_ms += result.modeled_millis;
  }
  return total_ms / num_queries;
}

void Run() {
  bench::PrintHeader("Figure 14(a)",
                     "subgraph match speedup vs machine count");
  const auto wordnet = graph::Generators::WordnetLike(40000, 31);
  const auto patent = graph::Generators::PatentLike(24000, 8.0, 37);
  std::printf("%10s %16s %16s\n", "machines", "wordnet_ms", "patent_ms");
  for (int machines : {4, 8, 12, 16}) {
    auto cloud_w = bench::NewCloud(machines);
    auto graph_w =
        bench::LoadGraph(cloud_w.get(), wordnet, false, /*track_inlinks=*/true);
    const double wordnet_ms = RunQueries(graph_w.get(), 3, 500, 2);

    auto cloud_p = bench::NewCloud(machines);
    auto graph_p =
        bench::LoadGraph(cloud_p.get(), patent, false, /*track_inlinks=*/true);
    const double patent_ms = RunQueries(graph_p.get(), 3, 900, 4);
    std::printf("%10d %16.3f %16.3f\n", machines, wordnet_ms, patent_ms);
  }
  std::printf(
      "(paper: response time drops steadily with machine count on both "
      "Wordnet and US patents)\n");
  bench::PrintFooter();
}

}  // namespace
}  // namespace trinity

int main() {
  trinity::Run();
  return 0;
}
