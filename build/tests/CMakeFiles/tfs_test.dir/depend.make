# Empty dependencies file for tfs_test.
# This may be replaced when dependencies are built.
