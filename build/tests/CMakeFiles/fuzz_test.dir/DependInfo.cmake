
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trinity_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tfs/CMakeFiles/trinity_tfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trinity_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/trinity_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/trinity_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/tsl/CMakeFiles/trinity_tsl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/trinity_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/trinity_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/trinity_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/trinity_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/trinity_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
