file(REMOVE_RECURSE
  "CMakeFiles/tsl_test.dir/tsl_test.cc.o"
  "CMakeFiles/tsl_test.dir/tsl_test.cc.o.d"
  "tsl_test"
  "tsl_test.pdb"
  "tsl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
