# Empty dependencies file for tsl_test.
# This may be replaced when dependencies are built.
