file(REMOVE_RECURSE
  "CMakeFiles/memory_trunk_test.dir/memory_trunk_test.cc.o"
  "CMakeFiles/memory_trunk_test.dir/memory_trunk_test.cc.o.d"
  "memory_trunk_test"
  "memory_trunk_test.pdb"
  "memory_trunk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_trunk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
