file(REMOVE_RECURSE
  "CMakeFiles/trunk_index_test.dir/trunk_index_test.cc.o"
  "CMakeFiles/trunk_index_test.dir/trunk_index_test.cc.o.d"
  "trunk_index_test"
  "trunk_index_test.pdb"
  "trunk_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trunk_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
