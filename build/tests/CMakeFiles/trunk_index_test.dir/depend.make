# Empty dependencies file for trunk_index_test.
# This may be replaced when dependencies are built.
