# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tfs_test[1]_include.cmake")
include("/root/repo/build/tests/trunk_index_test[1]_include.cmake")
include("/root/repo/build/tests/memory_trunk_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/tsl_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/compute_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration2_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
