file(REMOVE_RECURSE
  "libtrinity_graph.a"
)
