file(REMOVE_RECURSE
  "CMakeFiles/trinity_graph.dir/generators.cc.o"
  "CMakeFiles/trinity_graph.dir/generators.cc.o.d"
  "CMakeFiles/trinity_graph.dir/graph.cc.o"
  "CMakeFiles/trinity_graph.dir/graph.cc.o.d"
  "CMakeFiles/trinity_graph.dir/partition.cc.o"
  "CMakeFiles/trinity_graph.dir/partition.cc.o.d"
  "CMakeFiles/trinity_graph.dir/rich_edges.cc.o"
  "CMakeFiles/trinity_graph.dir/rich_edges.cc.o.d"
  "libtrinity_graph.a"
  "libtrinity_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
