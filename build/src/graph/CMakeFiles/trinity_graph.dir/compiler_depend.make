# Empty compiler generated dependencies file for trinity_graph.
# This may be replaced when dependencies are built.
