
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/trinity_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/trinity_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/trinity_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/trinity_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/trinity_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/trinity_graph.dir/partition.cc.o.d"
  "/root/repo/src/graph/rich_edges.cc" "src/graph/CMakeFiles/trinity_graph.dir/rich_edges.cc.o" "gcc" "src/graph/CMakeFiles/trinity_graph.dir/rich_edges.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trinity_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/trinity_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/trinity_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trinity_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tfs/CMakeFiles/trinity_tfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
