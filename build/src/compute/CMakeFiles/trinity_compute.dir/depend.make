# Empty dependencies file for trinity_compute.
# This may be replaced when dependencies are built.
