file(REMOVE_RECURSE
  "CMakeFiles/trinity_compute.dir/async_engine.cc.o"
  "CMakeFiles/trinity_compute.dir/async_engine.cc.o.d"
  "CMakeFiles/trinity_compute.dir/bsp.cc.o"
  "CMakeFiles/trinity_compute.dir/bsp.cc.o.d"
  "CMakeFiles/trinity_compute.dir/message_optimizer.cc.o"
  "CMakeFiles/trinity_compute.dir/message_optimizer.cc.o.d"
  "CMakeFiles/trinity_compute.dir/traversal.cc.o"
  "CMakeFiles/trinity_compute.dir/traversal.cc.o.d"
  "libtrinity_compute.a"
  "libtrinity_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
