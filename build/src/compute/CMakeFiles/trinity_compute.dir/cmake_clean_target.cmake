file(REMOVE_RECURSE
  "libtrinity_compute.a"
)
