file(REMOVE_RECURSE
  "CMakeFiles/trinity_algos.dir/bfs.cc.o"
  "CMakeFiles/trinity_algos.dir/bfs.cc.o.d"
  "CMakeFiles/trinity_algos.dir/graph_stats.cc.o"
  "CMakeFiles/trinity_algos.dir/graph_stats.cc.o.d"
  "CMakeFiles/trinity_algos.dir/landmark.cc.o"
  "CMakeFiles/trinity_algos.dir/landmark.cc.o.d"
  "CMakeFiles/trinity_algos.dir/pagerank.cc.o"
  "CMakeFiles/trinity_algos.dir/pagerank.cc.o.d"
  "CMakeFiles/trinity_algos.dir/people_search.cc.o"
  "CMakeFiles/trinity_algos.dir/people_search.cc.o.d"
  "CMakeFiles/trinity_algos.dir/sssp.cc.o"
  "CMakeFiles/trinity_algos.dir/sssp.cc.o.d"
  "CMakeFiles/trinity_algos.dir/subgraph_match.cc.o"
  "CMakeFiles/trinity_algos.dir/subgraph_match.cc.o.d"
  "CMakeFiles/trinity_algos.dir/wcc.cc.o"
  "CMakeFiles/trinity_algos.dir/wcc.cc.o.d"
  "libtrinity_algos.a"
  "libtrinity_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
