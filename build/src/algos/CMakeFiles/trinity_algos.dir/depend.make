# Empty dependencies file for trinity_algos.
# This may be replaced when dependencies are built.
