file(REMOVE_RECURSE
  "libtrinity_algos.a"
)
