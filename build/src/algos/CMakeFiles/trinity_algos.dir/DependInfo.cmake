
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/bfs.cc" "src/algos/CMakeFiles/trinity_algos.dir/bfs.cc.o" "gcc" "src/algos/CMakeFiles/trinity_algos.dir/bfs.cc.o.d"
  "/root/repo/src/algos/graph_stats.cc" "src/algos/CMakeFiles/trinity_algos.dir/graph_stats.cc.o" "gcc" "src/algos/CMakeFiles/trinity_algos.dir/graph_stats.cc.o.d"
  "/root/repo/src/algos/landmark.cc" "src/algos/CMakeFiles/trinity_algos.dir/landmark.cc.o" "gcc" "src/algos/CMakeFiles/trinity_algos.dir/landmark.cc.o.d"
  "/root/repo/src/algos/pagerank.cc" "src/algos/CMakeFiles/trinity_algos.dir/pagerank.cc.o" "gcc" "src/algos/CMakeFiles/trinity_algos.dir/pagerank.cc.o.d"
  "/root/repo/src/algos/people_search.cc" "src/algos/CMakeFiles/trinity_algos.dir/people_search.cc.o" "gcc" "src/algos/CMakeFiles/trinity_algos.dir/people_search.cc.o.d"
  "/root/repo/src/algos/sssp.cc" "src/algos/CMakeFiles/trinity_algos.dir/sssp.cc.o" "gcc" "src/algos/CMakeFiles/trinity_algos.dir/sssp.cc.o.d"
  "/root/repo/src/algos/subgraph_match.cc" "src/algos/CMakeFiles/trinity_algos.dir/subgraph_match.cc.o" "gcc" "src/algos/CMakeFiles/trinity_algos.dir/subgraph_match.cc.o.d"
  "/root/repo/src/algos/wcc.cc" "src/algos/CMakeFiles/trinity_algos.dir/wcc.cc.o" "gcc" "src/algos/CMakeFiles/trinity_algos.dir/wcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compute/CMakeFiles/trinity_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/trinity_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/trinity_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/trinity_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trinity_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tfs/CMakeFiles/trinity_tfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trinity_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
