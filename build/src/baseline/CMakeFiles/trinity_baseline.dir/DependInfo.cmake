
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/diskstream_engine.cc" "src/baseline/CMakeFiles/trinity_baseline.dir/diskstream_engine.cc.o" "gcc" "src/baseline/CMakeFiles/trinity_baseline.dir/diskstream_engine.cc.o.d"
  "/root/repo/src/baseline/ghost_engine.cc" "src/baseline/CMakeFiles/trinity_baseline.dir/ghost_engine.cc.o" "gcc" "src/baseline/CMakeFiles/trinity_baseline.dir/ghost_engine.cc.o.d"
  "/root/repo/src/baseline/heap_engine.cc" "src/baseline/CMakeFiles/trinity_baseline.dir/heap_engine.cc.o" "gcc" "src/baseline/CMakeFiles/trinity_baseline.dir/heap_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trinity_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trinity_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/trinity_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/trinity_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/trinity_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/tfs/CMakeFiles/trinity_tfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
