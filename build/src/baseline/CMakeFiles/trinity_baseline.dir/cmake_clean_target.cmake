file(REMOVE_RECURSE
  "libtrinity_baseline.a"
)
