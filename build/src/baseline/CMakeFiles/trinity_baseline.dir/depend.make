# Empty dependencies file for trinity_baseline.
# This may be replaced when dependencies are built.
