file(REMOVE_RECURSE
  "CMakeFiles/trinity_baseline.dir/diskstream_engine.cc.o"
  "CMakeFiles/trinity_baseline.dir/diskstream_engine.cc.o.d"
  "CMakeFiles/trinity_baseline.dir/ghost_engine.cc.o"
  "CMakeFiles/trinity_baseline.dir/ghost_engine.cc.o.d"
  "CMakeFiles/trinity_baseline.dir/heap_engine.cc.o"
  "CMakeFiles/trinity_baseline.dir/heap_engine.cc.o.d"
  "libtrinity_baseline.a"
  "libtrinity_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
