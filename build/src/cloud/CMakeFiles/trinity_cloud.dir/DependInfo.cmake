
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/addressing_table.cc" "src/cloud/CMakeFiles/trinity_cloud.dir/addressing_table.cc.o" "gcc" "src/cloud/CMakeFiles/trinity_cloud.dir/addressing_table.cc.o.d"
  "/root/repo/src/cloud/external_store.cc" "src/cloud/CMakeFiles/trinity_cloud.dir/external_store.cc.o" "gcc" "src/cloud/CMakeFiles/trinity_cloud.dir/external_store.cc.o.d"
  "/root/repo/src/cloud/memory_cloud.cc" "src/cloud/CMakeFiles/trinity_cloud.dir/memory_cloud.cc.o" "gcc" "src/cloud/CMakeFiles/trinity_cloud.dir/memory_cloud.cc.o.d"
  "/root/repo/src/cloud/multiop.cc" "src/cloud/CMakeFiles/trinity_cloud.dir/multiop.cc.o" "gcc" "src/cloud/CMakeFiles/trinity_cloud.dir/multiop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trinity_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/trinity_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trinity_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tfs/CMakeFiles/trinity_tfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
