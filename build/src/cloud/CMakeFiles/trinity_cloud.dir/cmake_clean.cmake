file(REMOVE_RECURSE
  "CMakeFiles/trinity_cloud.dir/addressing_table.cc.o"
  "CMakeFiles/trinity_cloud.dir/addressing_table.cc.o.d"
  "CMakeFiles/trinity_cloud.dir/external_store.cc.o"
  "CMakeFiles/trinity_cloud.dir/external_store.cc.o.d"
  "CMakeFiles/trinity_cloud.dir/memory_cloud.cc.o"
  "CMakeFiles/trinity_cloud.dir/memory_cloud.cc.o.d"
  "CMakeFiles/trinity_cloud.dir/multiop.cc.o"
  "CMakeFiles/trinity_cloud.dir/multiop.cc.o.d"
  "libtrinity_cloud.a"
  "libtrinity_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
