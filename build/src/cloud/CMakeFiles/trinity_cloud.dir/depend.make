# Empty dependencies file for trinity_cloud.
# This may be replaced when dependencies are built.
