file(REMOVE_RECURSE
  "libtrinity_cloud.a"
)
