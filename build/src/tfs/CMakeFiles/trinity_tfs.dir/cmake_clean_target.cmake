file(REMOVE_RECURSE
  "libtrinity_tfs.a"
)
