file(REMOVE_RECURSE
  "CMakeFiles/trinity_tfs.dir/tfs.cc.o"
  "CMakeFiles/trinity_tfs.dir/tfs.cc.o.d"
  "libtrinity_tfs.a"
  "libtrinity_tfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_tfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
