# Empty dependencies file for trinity_tfs.
# This may be replaced when dependencies are built.
