file(REMOVE_RECURSE
  "libtrinity_storage.a"
)
