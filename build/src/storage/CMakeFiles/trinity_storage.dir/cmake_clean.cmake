file(REMOVE_RECURSE
  "CMakeFiles/trinity_storage.dir/memory_storage.cc.o"
  "CMakeFiles/trinity_storage.dir/memory_storage.cc.o.d"
  "CMakeFiles/trinity_storage.dir/memory_trunk.cc.o"
  "CMakeFiles/trinity_storage.dir/memory_trunk.cc.o.d"
  "CMakeFiles/trinity_storage.dir/trunk_index.cc.o"
  "CMakeFiles/trinity_storage.dir/trunk_index.cc.o.d"
  "libtrinity_storage.a"
  "libtrinity_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
