# Empty compiler generated dependencies file for trinity_storage.
# This may be replaced when dependencies are built.
