
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsl/ast.cc" "src/tsl/CMakeFiles/trinity_tsl.dir/ast.cc.o" "gcc" "src/tsl/CMakeFiles/trinity_tsl.dir/ast.cc.o.d"
  "/root/repo/src/tsl/cell_accessor.cc" "src/tsl/CMakeFiles/trinity_tsl.dir/cell_accessor.cc.o" "gcc" "src/tsl/CMakeFiles/trinity_tsl.dir/cell_accessor.cc.o.d"
  "/root/repo/src/tsl/cell_io.cc" "src/tsl/CMakeFiles/trinity_tsl.dir/cell_io.cc.o" "gcc" "src/tsl/CMakeFiles/trinity_tsl.dir/cell_io.cc.o.d"
  "/root/repo/src/tsl/codegen.cc" "src/tsl/CMakeFiles/trinity_tsl.dir/codegen.cc.o" "gcc" "src/tsl/CMakeFiles/trinity_tsl.dir/codegen.cc.o.d"
  "/root/repo/src/tsl/data_import.cc" "src/tsl/CMakeFiles/trinity_tsl.dir/data_import.cc.o" "gcc" "src/tsl/CMakeFiles/trinity_tsl.dir/data_import.cc.o.d"
  "/root/repo/src/tsl/lexer.cc" "src/tsl/CMakeFiles/trinity_tsl.dir/lexer.cc.o" "gcc" "src/tsl/CMakeFiles/trinity_tsl.dir/lexer.cc.o.d"
  "/root/repo/src/tsl/parser.cc" "src/tsl/CMakeFiles/trinity_tsl.dir/parser.cc.o" "gcc" "src/tsl/CMakeFiles/trinity_tsl.dir/parser.cc.o.d"
  "/root/repo/src/tsl/protocol.cc" "src/tsl/CMakeFiles/trinity_tsl.dir/protocol.cc.o" "gcc" "src/tsl/CMakeFiles/trinity_tsl.dir/protocol.cc.o.d"
  "/root/repo/src/tsl/schema.cc" "src/tsl/CMakeFiles/trinity_tsl.dir/schema.cc.o" "gcc" "src/tsl/CMakeFiles/trinity_tsl.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trinity_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/trinity_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/trinity_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trinity_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tfs/CMakeFiles/trinity_tfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
