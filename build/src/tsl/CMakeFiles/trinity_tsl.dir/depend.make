# Empty dependencies file for trinity_tsl.
# This may be replaced when dependencies are built.
