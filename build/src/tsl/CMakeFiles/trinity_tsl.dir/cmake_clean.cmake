file(REMOVE_RECURSE
  "CMakeFiles/trinity_tsl.dir/ast.cc.o"
  "CMakeFiles/trinity_tsl.dir/ast.cc.o.d"
  "CMakeFiles/trinity_tsl.dir/cell_accessor.cc.o"
  "CMakeFiles/trinity_tsl.dir/cell_accessor.cc.o.d"
  "CMakeFiles/trinity_tsl.dir/cell_io.cc.o"
  "CMakeFiles/trinity_tsl.dir/cell_io.cc.o.d"
  "CMakeFiles/trinity_tsl.dir/codegen.cc.o"
  "CMakeFiles/trinity_tsl.dir/codegen.cc.o.d"
  "CMakeFiles/trinity_tsl.dir/data_import.cc.o"
  "CMakeFiles/trinity_tsl.dir/data_import.cc.o.d"
  "CMakeFiles/trinity_tsl.dir/lexer.cc.o"
  "CMakeFiles/trinity_tsl.dir/lexer.cc.o.d"
  "CMakeFiles/trinity_tsl.dir/parser.cc.o"
  "CMakeFiles/trinity_tsl.dir/parser.cc.o.d"
  "CMakeFiles/trinity_tsl.dir/protocol.cc.o"
  "CMakeFiles/trinity_tsl.dir/protocol.cc.o.d"
  "CMakeFiles/trinity_tsl.dir/schema.cc.o"
  "CMakeFiles/trinity_tsl.dir/schema.cc.o.d"
  "libtrinity_tsl.a"
  "libtrinity_tsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_tsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
