file(REMOVE_RECURSE
  "libtrinity_tsl.a"
)
