# Empty dependencies file for trinity_query.
# This may be replaced when dependencies are built.
