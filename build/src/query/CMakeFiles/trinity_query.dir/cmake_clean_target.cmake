file(REMOVE_RECURSE
  "libtrinity_query.a"
)
