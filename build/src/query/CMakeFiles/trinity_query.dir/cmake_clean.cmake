file(REMOVE_RECURSE
  "CMakeFiles/trinity_query.dir/lubm.cc.o"
  "CMakeFiles/trinity_query.dir/lubm.cc.o.d"
  "CMakeFiles/trinity_query.dir/rdf_store.cc.o"
  "CMakeFiles/trinity_query.dir/rdf_store.cc.o.d"
  "CMakeFiles/trinity_query.dir/tql.cc.o"
  "CMakeFiles/trinity_query.dir/tql.cc.o.d"
  "libtrinity_query.a"
  "libtrinity_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
