# Empty compiler generated dependencies file for trinity_net.
# This may be replaced when dependencies are built.
