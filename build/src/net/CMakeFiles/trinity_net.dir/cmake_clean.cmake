file(REMOVE_RECURSE
  "CMakeFiles/trinity_net.dir/cost_model.cc.o"
  "CMakeFiles/trinity_net.dir/cost_model.cc.o.d"
  "CMakeFiles/trinity_net.dir/fabric.cc.o"
  "CMakeFiles/trinity_net.dir/fabric.cc.o.d"
  "libtrinity_net.a"
  "libtrinity_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
