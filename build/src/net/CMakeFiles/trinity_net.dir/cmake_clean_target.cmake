file(REMOVE_RECURSE
  "libtrinity_net.a"
)
