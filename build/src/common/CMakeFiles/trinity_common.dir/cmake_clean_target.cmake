file(REMOVE_RECURSE
  "libtrinity_common.a"
)
