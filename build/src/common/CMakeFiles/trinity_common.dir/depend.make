# Empty dependencies file for trinity_common.
# This may be replaced when dependencies are built.
