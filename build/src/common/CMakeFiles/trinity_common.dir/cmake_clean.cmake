file(REMOVE_RECURSE
  "CMakeFiles/trinity_common.dir/histogram.cc.o"
  "CMakeFiles/trinity_common.dir/histogram.cc.o.d"
  "CMakeFiles/trinity_common.dir/logging.cc.o"
  "CMakeFiles/trinity_common.dir/logging.cc.o.d"
  "CMakeFiles/trinity_common.dir/random.cc.o"
  "CMakeFiles/trinity_common.dir/random.cc.o.d"
  "CMakeFiles/trinity_common.dir/status.cc.o"
  "CMakeFiles/trinity_common.dir/status.cc.o.d"
  "CMakeFiles/trinity_common.dir/threadpool.cc.o"
  "CMakeFiles/trinity_common.dir/threadpool.cc.o.d"
  "libtrinity_common.a"
  "libtrinity_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
