# Empty compiler generated dependencies file for bench_fig13_pbgl_vs_trinity.
# This may be replaced when dependencies are built.
