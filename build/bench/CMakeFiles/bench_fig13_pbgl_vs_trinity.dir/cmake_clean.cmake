file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pbgl_vs_trinity.dir/bench_fig13_pbgl_vs_trinity.cc.o"
  "CMakeFiles/bench_fig13_pbgl_vs_trinity.dir/bench_fig13_pbgl_vs_trinity.cc.o.d"
  "bench_fig13_pbgl_vs_trinity"
  "bench_fig13_pbgl_vs_trinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pbgl_vs_trinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
