file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_msgopt.dir/bench_ablation_msgopt.cc.o"
  "CMakeFiles/bench_ablation_msgopt.dir/bench_ablation_msgopt.cc.o.d"
  "bench_ablation_msgopt"
  "bench_ablation_msgopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_msgopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
