# Empty dependencies file for bench_ablation_msgopt.
# This may be replaced when dependencies are built.
