file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14b_speedup_sparql.dir/bench_fig14b_speedup_sparql.cc.o"
  "CMakeFiles/bench_fig14b_speedup_sparql.dir/bench_fig14b_speedup_sparql.cc.o.d"
  "bench_fig14b_speedup_sparql"
  "bench_fig14b_speedup_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14b_speedup_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
