# Empty compiler generated dependencies file for bench_fig14b_speedup_sparql.
# This may be replaced when dependencies are built.
