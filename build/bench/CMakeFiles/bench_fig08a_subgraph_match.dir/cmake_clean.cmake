file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08a_subgraph_match.dir/bench_fig08a_subgraph_match.cc.o"
  "CMakeFiles/bench_fig08a_subgraph_match.dir/bench_fig08a_subgraph_match.cc.o.d"
  "bench_fig08a_subgraph_match"
  "bench_fig08a_subgraph_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08a_subgraph_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
