# Empty compiler generated dependencies file for bench_fig08a_subgraph_match.
# This may be replaced when dependencies are built.
