file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08b_distance_oracle.dir/bench_fig08b_distance_oracle.cc.o"
  "CMakeFiles/bench_fig08b_distance_oracle.dir/bench_fig08b_distance_oracle.cc.o.d"
  "bench_fig08b_distance_oracle"
  "bench_fig08b_distance_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08b_distance_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
