# Empty dependencies file for bench_fig08b_distance_oracle.
# This may be replaced when dependencies are built.
