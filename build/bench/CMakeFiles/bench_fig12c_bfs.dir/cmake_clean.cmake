file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12c_bfs.dir/bench_fig12c_bfs.cc.o"
  "CMakeFiles/bench_fig12c_bfs.dir/bench_fig12c_bfs.cc.o.d"
  "bench_fig12c_bfs"
  "bench_fig12c_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12c_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
