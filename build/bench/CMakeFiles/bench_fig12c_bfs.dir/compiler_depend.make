# Empty compiler generated dependencies file for bench_fig12c_bfs.
# This may be replaced when dependencies are built.
