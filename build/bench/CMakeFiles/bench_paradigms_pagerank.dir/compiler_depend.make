# Empty compiler generated dependencies file for bench_paradigms_pagerank.
# This may be replaced when dependencies are built.
