file(REMOVE_RECURSE
  "CMakeFiles/bench_paradigms_pagerank.dir/bench_paradigms_pagerank.cc.o"
  "CMakeFiles/bench_paradigms_pagerank.dir/bench_paradigms_pagerank.cc.o.d"
  "bench_paradigms_pagerank"
  "bench_paradigms_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paradigms_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
