# Empty dependencies file for bench_micro_cloud.
# This may be replaced when dependencies are built.
