file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_cloud.dir/bench_micro_cloud.cc.o"
  "CMakeFiles/bench_micro_cloud.dir/bench_micro_cloud.cc.o.d"
  "bench_micro_cloud"
  "bench_micro_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
