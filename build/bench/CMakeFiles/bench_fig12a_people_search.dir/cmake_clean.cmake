file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12a_people_search.dir/bench_fig12a_people_search.cc.o"
  "CMakeFiles/bench_fig12a_people_search.dir/bench_fig12a_people_search.cc.o.d"
  "bench_fig12a_people_search"
  "bench_fig12a_people_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12a_people_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
