# Empty compiler generated dependencies file for bench_fig12a_people_search.
# This may be replaced when dependencies are built.
