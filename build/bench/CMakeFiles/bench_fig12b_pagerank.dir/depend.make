# Empty dependencies file for bench_fig12b_pagerank.
# This may be replaced when dependencies are built.
