file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12b_pagerank.dir/bench_fig12b_pagerank.cc.o"
  "CMakeFiles/bench_fig12b_pagerank.dir/bench_fig12b_pagerank.cc.o.d"
  "bench_fig12b_pagerank"
  "bench_fig12b_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12b_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
