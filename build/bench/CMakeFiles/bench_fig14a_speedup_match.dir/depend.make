# Empty dependencies file for bench_fig14a_speedup_match.
# This may be replaced when dependencies are built.
