# Empty dependencies file for bench_fig12d_giraph_pagerank.
# This may be replaced when dependencies are built.
