file(REMOVE_RECURSE
  "CMakeFiles/pagerank_web.dir/pagerank_web.cc.o"
  "CMakeFiles/pagerank_web.dir/pagerank_web.cc.o.d"
  "pagerank_web"
  "pagerank_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
