# Empty compiler generated dependencies file for pagerank_web.
# This may be replaced when dependencies are built.
