# Empty dependencies file for graph_stream.
# This may be replaced when dependencies are built.
