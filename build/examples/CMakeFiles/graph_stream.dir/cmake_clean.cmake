file(REMOVE_RECURSE
  "CMakeFiles/graph_stream.dir/graph_stream.cc.o"
  "CMakeFiles/graph_stream.dir/graph_stream.cc.o.d"
  "graph_stream"
  "graph_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
