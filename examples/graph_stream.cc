// Graph streams (paper §6.1): "For certain applications (e.g., graph
// generation, graph streams, etc.), the size of key-value pairs keep
// increasing (as new edges are added to the node cells)." This example
// ingests a continuous edge stream into a live memory cloud while the
// background defragmentation daemons run, and prints the storage-engine
// mechanics as they happen: in-place expansions riding the short-lived
// reservations vs. relocations, dead bytes accumulating, and defrag passes
// reclaiming them.
//
// Build & run:  ./build/examples/graph_stream

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "graph/graph.h"

int main() {
  using namespace trinity;

  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.storage.trunk.capacity = 16 << 20;
  options.storage.defrag_threshold = 0.2;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  Status s = cloud::MemoryCloud::Create(options, &cloud);
  if (!s.ok()) {
    std::fprintf(stderr, "cloud error: %s\n", s.ToString().c_str());
    return 1;
  }
  graph::Graph::Options graph_options;
  graph_options.track_inlinks = false;
  graph::Graph graph(cloud.get(), graph_options);

  const std::uint64_t kNodes = 5000;
  for (CellId v = 0; v < kNodes; ++v) {
    (void)graph.AddNode(v, Slice());
  }
  // Start the §6.1 background defragmentation daemons on every slave.
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    cloud->storage(m)->StartDefragDaemon(std::chrono::milliseconds(20));
  }

  auto totals = [&] {
    storage::MemoryTrunk::Stats total;
    for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
      for (TrunkId t : cloud->storage(m)->trunk_ids()) {
        const auto stats = cloud->storage(m)->trunk(t)->stats();
        total.live_bytes += stats.live_bytes;
        total.dead_bytes += stats.dead_bytes;
        total.reserved_slack += stats.reserved_slack;
        total.committed_bytes += stats.committed_bytes;
        total.defrag_passes += stats.defrag_passes;
        total.expansions_in_place += stats.expansions_in_place;
        total.expansions_relocated += stats.expansions_relocated;
      }
    }
    return total;
  };

  std::printf(
      "streaming edges into %llu node cells (preferential attachment)...\n\n",
      static_cast<unsigned long long>(kNodes));
  std::printf("%10s %10s %10s %10s %10s %10s %9s\n", "edges", "live_KB",
              "slack_KB", "dead_KB", "commit_KB", "in_place", "relocate");
  Random rng(99);
  std::uint64_t edges = 0;
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 20000; ++i) {
      // Preferential attachment: hubs keep growing — the worst case for a
      // storage engine without reservations.
      const double u = rng.NextDouble();
      const CellId from = static_cast<CellId>(
          static_cast<double>(kNodes) * u * u);
      const CellId to = rng.Uniform(kNodes);
      if (graph.AddEdge(std::min(from, kNodes - 1), to).ok()) ++edges;
    }
    const auto t = totals();
    std::printf("%10llu %10.1f %10.1f %10.1f %10.1f %10llu %9llu\n",
                static_cast<unsigned long long>(edges),
                static_cast<double>(t.live_bytes) / 1024.0,
                static_cast<double>(t.reserved_slack) / 1024.0,
                static_cast<double>(t.dead_bytes) / 1024.0,
                static_cast<double>(t.committed_bytes) / 1024.0,
                static_cast<unsigned long long>(t.expansions_in_place),
                static_cast<unsigned long long>(t.expansions_relocated));
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    cloud->storage(m)->StopDefragDaemon();
  }
  const auto final_stats = totals();
  std::printf(
      "\nfinal: %llu defrag passes reclaimed the stream's garbage; "
      "%.1f%% of expansions were in-place thanks to reservations\n",
      static_cast<unsigned long long>(final_stats.defrag_passes),
      100.0 * static_cast<double>(final_stats.expansions_in_place) /
          static_cast<double>(final_stats.expansions_in_place +
                              final_stats.expansions_relocated));

  // The stream stays queryable throughout.
  std::vector<CellId> out;
  (void)graph.GetOutlinks(0, &out);
  std::printf("node 0 accumulated %zu outgoing edges while streaming\n",
              out.size());
  return 0;
}
