// A knowledge graph on the memory cloud (paper §1/§8: Trinity backs
// knowledge bases like Probase and the Trinity.RDF engine [36]): LUBM-shaped
// university data stored as predicate-tagged adjacency inside entity cells,
// queried with machine-parallel SPARQL-style scans — no relational joins.
//
// Build & run:  ./build/examples/knowledge_graph

#include <cstdio>

#include "query/lubm.h"
#include "query/rdf_store.h"

int main() {
  using namespace trinity;

  cloud::MemoryCloud::Options options;
  options.num_slaves = 8;
  options.p_bits = 5;
  options.storage.trunk.capacity = 16 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  Status s = cloud::MemoryCloud::Create(options, &cloud);
  if (!s.ok()) {
    std::fprintf(stderr, "cloud error: %s\n", s.ToString().c_str());
    return 1;
  }
  query::RdfStore store(cloud.get());

  query::LubmGenerator::Options lubm;
  lubm.universities = 6;
  lubm.departments_per_university = 10;
  lubm.professors_per_department = 8;
  lubm.courses_per_professor = 2;
  lubm.students_per_department = 80;
  lubm.courses_per_student = 4;
  query::LubmGenerator::Dataset dataset;
  s = query::LubmGenerator::Generate(&store, lubm, &dataset);
  if (!s.ok()) {
    std::fprintf(stderr, "generation error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "knowledge base: %llu entities, %llu triples over %d machines\n\n",
      static_cast<unsigned long long>(dataset.entities),
      static_cast<unsigned long long>(dataset.triples), options.num_slaves);

  query::SparqlQueries queries(&store, net::CostModel{});

  query::SparqlQueries::QueryStats q;
  s = queries.StudentsOfCourse(dataset.first_course, &q);
  std::printf(
      "Q1 students taking course %llu:        %6llu results  (%.3f ms, %llu "
      "remote lookups)\n",
      static_cast<unsigned long long>(dataset.first_course),
      static_cast<unsigned long long>(q.results), q.modeled_millis,
      static_cast<unsigned long long>(q.remote_lookups));

  s = queries.ProfessorsOfUniversity(dataset.first_university, &q);
  std::printf(
      "Q2 professors of university %llu:       %6llu results  (%.3f ms, %llu "
      "remote lookups)\n",
      static_cast<unsigned long long>(dataset.first_university),
      static_cast<unsigned long long>(q.results), q.modeled_millis,
      static_cast<unsigned long long>(q.remote_lookups));

  s = queries.StudentsAdvisedByTheirTeacher(&q);
  std::printf(
      "Q3 students taught by their advisor:  %6llu results  (%.3f ms, %llu "
      "remote lookups)\n",
      static_cast<unsigned long long>(q.results), q.modeled_millis,
      static_cast<unsigned long long>(q.remote_lookups));

  s = queries.ProfessorsAffiliatedWith(dataset.first_university, &q);
  std::printf(
      "Q4 professors affiliated (path query): %6llu results  (%.3f ms, %llu "
      "remote lookups)\n",
      static_cast<unsigned long long>(q.results), q.modeled_millis,
      static_cast<unsigned long long>(q.remote_lookups));

  // Entities stay editable at memory speed: enroll one more student.
  const CellId new_student = dataset.entities + 1000;
  (void)store.AddEntity(new_student, query::EntityType::kStudent);
  (void)store.AddTriple(new_student, query::Predicate::kTakesCourse,
                        dataset.first_course);
  s = queries.StudentsOfCourse(dataset.first_course, &q);
  std::printf(
      "\nafter enrolling student %llu, Q1 now returns %llu results\n",
      static_cast<unsigned long long>(new_student),
      static_cast<unsigned long long>(q.results));
  return 0;
}
