// Quickstart: the paper's Fig 4/5/6 workflow end to end.
//
//  1. Declare a graph schema and a communication protocol in TSL.
//  2. Spin up an in-process memory cloud (the simulated cluster).
//  3. Create cells and manipulate them through generated-style accessors.
//  4. Traverse the graph, and call a TSL protocol like a local method.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "cloud/memory_cloud.h"
#include "tsl/cell_io.h"
#include "tsl/codegen.h"
#include "tsl/protocol.h"

namespace {

// The movie/actor TSL script from the paper (Fig 4) plus an Echo protocol
// (Fig 5).
constexpr const char* kScript = R"(
  [CellType: NodeCell]
  cell struct Movie {
    string Name;
    [EdgeType: SimpleEdge, ReferencedCell: Actor]
    List<long> Actors;
  }
  [CellType: NodeCell]
  cell struct Actor {
    string Name;
    [EdgeType: SimpleEdge, ReferencedCell: Movie]
    List<long> Movies;
  }
  struct MyMessage { string Text; }
  protocol Echo { Type: Syn; Request: MyMessage; Response: MyMessage; }
)";

}  // namespace

int main() {
  using namespace trinity;

  // --- 1. Compile the TSL script -----------------------------------------
  tsl::SchemaRegistry registry;
  Status s = tsl::SchemaRegistry::Compile(kScript, &registry);
  if (!s.ok()) {
    std::fprintf(stderr, "TSL compile error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("compiled TSL: %zu cell types, %zu protocols\n",
              registry.cell_schemas().size(), registry.protocols().size());

  // --- 2. Start a 4-slave memory cloud ------------------------------------
  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;  // 16 memory trunks spread over the slaves.
  options.storage.trunk.capacity = 16 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  s = cloud::MemoryCloud::Create(options, &cloud);
  if (!s.ok()) {
    std::fprintf(stderr, "cloud error: %s\n", s.ToString().c_str());
    return 1;
  }
  const MachineId client = cloud->client_id();

  // --- 3. Create and manipulate cells -------------------------------------
  const tsl::Schema* movie = registry.struct_schema("Movie");
  const tsl::Schema* actor = registry.struct_schema("Actor");
  const CellId kMatrix = 1, kKeanu = 100, kCarrie = 101;
  (void)tsl::NewCell(cloud.get(), client, kMatrix, movie);
  (void)tsl::NewCell(cloud.get(), client, kKeanu, actor);
  (void)tsl::NewCell(cloud.get(), client, kCarrie, actor);

  {
    // using (var cell = UseMovieAccessor(kMatrix)) { ... } — commits on
    // scope exit.
    tsl::ScopedCell cell;
    (void)tsl::ScopedCell::Use(cloud.get(), client, kMatrix, movie, &cell);
    (void)cell.accessor().SetString(0, Slice("The Matrix"));
    (void)cell.accessor().AppendListInt64(1, kKeanu);
    (void)cell.accessor().AppendListInt64(1, kCarrie);
  }
  {
    tsl::ScopedCell cell;
    (void)tsl::ScopedCell::Use(cloud.get(), client, kKeanu, actor, &cell);
    (void)cell.accessor().SetString(0, Slice("Keanu Reeves"));
    (void)cell.accessor().AppendListInt64(1, kMatrix);
  }

  // --- 4. Read it back through the accessor (zero-parse field mapping) ----
  tsl::CellAccessor loaded;
  (void)tsl::LoadCell(cloud.get(), client, kMatrix, movie, &loaded);
  std::string name;
  (void)loaded.GetString(0, &name);
  std::size_t cast_size = 0;
  (void)loaded.ListSize(1, &cast_size);
  std::printf("movie %llu: \"%s\" with %zu actors, stored on machine %d\n",
              static_cast<unsigned long long>(kMatrix), name.c_str(),
              cast_size, cloud->MachineOf(kMatrix));

  // --- 5. Call the Echo protocol like a local method ----------------------
  tsl::ProtocolRuntime runtime(&registry, cloud.get());
  (void)runtime.RegisterSynHandler(
      0, "Echo",
      [](MachineId src, const tsl::CellAccessor& request,
         tsl::CellAccessor* response) {
        std::string text;
        Status gs = request.GetString(0, &text);
        if (!gs.ok()) return gs;
        return response->SetString(
            0, Slice("machine 0 echoes '" + text + "' back to machine " +
                     std::to_string(src)));
      });
  tsl::CellAccessor request =
      tsl::CellAccessor::NewDefault(registry.struct_schema("MyMessage"));
  (void)request.SetString(0, Slice("hello trinity"));
  tsl::CellAccessor response;
  s = runtime.Call(client, 0, "Echo", request, &response);
  std::string text;
  (void)response.GetString(0, &text);
  std::printf("Echo response: %s\n", text.c_str());

  // --- 6. Show what the TSL compiler would generate -----------------------
  const std::string generated =
      tsl::Codegen::GenerateHeader(registry, "QUICKSTART_GENERATED_H_");
  std::printf("\nTSL codegen would emit %zu bytes of C++; first lines:\n",
              generated.size());
  std::printf("%.*s...\n", 220, generated.c_str());
  return 0;
}
