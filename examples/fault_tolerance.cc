// Fault tolerance walkthrough (paper §6.2): snapshot to TFS, RAMCloud-style
// buffered logging for post-snapshot updates, heartbeat failure detection,
// leader election with a TFS fencing flag, and trunk recovery onto the
// surviving machines — all while the workload keeps running.
//
// Build & run:  ./build/examples/fault_tolerance

#include <cstdio>
#include <filesystem>

#include "graph/generators.h"
#include "graph/graph.h"

int main() {
  using namespace trinity;

  const std::string tfs_root = "/tmp/trinity_ft_example";
  std::filesystem::remove_all(tfs_root);
  tfs::Tfs::Options tfs_options;
  tfs_options.root = tfs_root;
  tfs_options.num_datanodes = 3;
  tfs_options.replication = 2;
  std::unique_ptr<tfs::Tfs> tfs;
  Status s = tfs::Tfs::Open(tfs_options, &tfs);
  if (!s.ok()) {
    std::fprintf(stderr, "tfs error: %s\n", s.ToString().c_str());
    return 1;
  }

  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.storage.trunk.capacity = 16 << 20;
  options.tfs = tfs.get();
  options.buffered_logging = true;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  s = cloud::MemoryCloud::Create(options, &cloud);
  if (!s.ok()) {
    std::fprintf(stderr, "cloud error: %s\n", s.ToString().c_str());
    return 1;
  }

  graph::Graph graph(cloud.get());
  std::printf("loading a 5000-node graph on 4 slaves...\n");
  (void)graph::Generators::LoadRmat(&graph, 5000, 6.0, 11);

  std::printf("persisting all memory trunks to TFS (snapshot)...\n");
  s = cloud->SaveSnapshot();
  if (!s.ok()) {
    std::fprintf(stderr, "snapshot error: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf(
      "writing post-snapshot updates (covered only by buffered logging)...\n");
  (void)graph.AddNode(777777, Slice("critical late write"));
  (void)graph.AddEdge(777777, 1);

  const MachineId victim = 1;
  std::printf(
      "\n*** machine %d crashes (RAM contents and its backup logs lost) "
      "***\n\n",
      victim);
  (void)cloud->FailMachine(victim);

  std::printf("leader runs a heartbeat sweep and recovers: %d machine(s)\n",
              cloud->DetectAndRecover());
  std::printf("trunks of machine %d now hosted elsewhere: %s\n", victim,
              cloud->table().trunks_of(victim).empty() ? "yes" : "no");

  // Verify nothing was lost — including the post-snapshot write.
  std::string data;
  s = graph.GetNodeData(777777, &data);
  std::printf("post-snapshot cell after recovery: %s (\"%s\")\n",
              s.ToString().c_str(), data.c_str());
  std::uint64_t intact = 0;
  std::vector<CellId> out;
  for (CellId v = 0; v < 5000; ++v) {
    if (graph.GetOutlinks(v, &out).ok()) ++intact;
  }
  std::printf("graph nodes readable after recovery: %llu / 5000\n",
              static_cast<unsigned long long>(intact));

  std::printf("\n*** the leader (machine 0) crashes too ***\n\n");
  (void)cloud->FailMachine(0);
  (void)cloud->DetectAndRecover();
  std::printf("new leader elected: machine %d (fenced via TFS flag file)\n",
              cloud->leader());
  intact = 0;
  for (CellId v = 0; v < 5000; ++v) {
    if (graph.GetOutlinks(v, &out).ok()) ++intact;
  }
  std::printf("graph nodes readable after second failure: %llu / 5000\n",
              static_cast<unsigned long long>(intact));

  std::printf("\nmachine %d restarts and rejoins the memory cloud\n", victim);
  (void)cloud->RestartMachine(victim);
  (void)cloud->AddCellFrom(victim, 888888, Slice("issued from rejoined"));
  std::string check;
  (void)cloud->GetCell(888888, &check);
  std::printf("write issued from rejoined machine readable: \"%s\"\n",
              check.c_str());
  return 0;
}
