// Interactive TQL shell over a generated social graph (§4.2 mentions TQL as
// a query language built within the TSL framework). Reads one statement per
// line from stdin; exits on EOF or "quit".
//
// Try:
//   echo "EXPLORE FROM 42 HOPS 1..2 WHERE NAME = 'David' LIMIT 5
//   COUNT FROM 42 HOPS 1..3
//   NODE 42
//   PATH FROM 42 TO 1000" | ./build/examples/tql_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "graph/generators.h"
#include "query/tql.h"

int main() {
  using namespace trinity;

  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.storage.trunk.capacity = 16 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  Status s = cloud::MemoryCloud::Create(options, &cloud);
  if (!s.ok()) {
    std::fprintf(stderr, "cloud error: %s\n", s.ToString().c_str());
    return 1;
  }
  graph::Graph graph(cloud.get());
  const auto edges = graph::Generators::PowerLaw(10000, 10.0, 2.16, 5);
  s = graph::Generators::Load(&graph, edges, /*with_names=*/true, 5);
  if (!s.ok()) {
    std::fprintf(stderr, "load error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "TQL shell over a 10000-person social graph on 4 machines.\n"
      "Statements: EXPLORE, COUNT, NEIGHBORS, NODE, PATH. 'quit' exits.\n");

  query::Tql tql(&graph);
  std::string line;
  while (true) {
    std::printf("tql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    query::Tql::Result result;
    s = tql.Execute(line, &result);
    if (!s.ok()) {
      std::printf("error: %s\n", s.ToString().c_str());
      continue;
    }
    std::printf("%s", query::Tql::Format(result).c_str());
  }
  std::printf("\nbye\n");
  return 0;
}
