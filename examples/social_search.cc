// The "David problem" (paper §5.1, Fig 7): while a user is logged in on a
// social network, find anyone named David among their friends, friends'
// friends, and friends' friends' friends — with no index, by raw
// memory-speed graph exploration across the cluster.
//
// Build & run:  ./build/examples/social_search

#include <cstdio>

#include "algos/people_search.h"
#include "graph/generators.h"

int main() {
  using namespace trinity;

  // An 8-machine cluster holding a Facebook-like social graph: power-law
  // degree distribution, average degree 13, names attached to every node.
  cloud::MemoryCloud::Options options;
  options.num_slaves = 8;
  options.p_bits = 5;
  options.storage.trunk.capacity = 32 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  Status s = cloud::MemoryCloud::Create(options, &cloud);
  if (!s.ok()) {
    std::fprintf(stderr, "cloud error: %s\n", s.ToString().c_str());
    return 1;
  }
  graph::Graph::Options graph_options;
  graph_options.track_inlinks = false;
  graph::Graph graph(cloud.get(), graph_options);

  const std::uint64_t kPeople = 30000;
  std::printf("loading a %llu-person social graph over %d machines...\n",
              static_cast<unsigned long long>(kPeople), options.num_slaves);
  const auto edges = graph::Generators::PowerLaw(kPeople, 13.0, 2.16, 2026);
  s = graph::Generators::Load(&graph, edges, /*with_names=*/true, 2026);
  if (!s.ok()) {
    std::fprintf(stderr, "load error: %s\n", s.ToString().c_str());
    return 1;
  }

  const CellId user = 4242;
  std::string user_name;
  (void)graph.GetNodeData(user, &user_name);
  std::printf("user %llu (%s) searches for \"David\" within 3 hops\n\n",
              static_cast<unsigned long long>(user), user_name.c_str());

  for (int hops = 1; hops <= 3; ++hops) {
    algos::PeopleSearchOptions search;
    search.max_hops = hops;
    algos::PeopleSearchResult result;
    s = algos::RunPeopleSearch(&graph, user, "David", search, &result);
    if (!s.ok()) {
      std::fprintf(stderr, "search error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf(
        "%d-hop search: %4zu Davids | explored %6llu people in %d rounds | "
        "%llu messages | modeled latency %.3f ms\n",
        hops, result.matches.size(),
        static_cast<unsigned long long>(result.stats.visited),
        result.stats.rounds,
        static_cast<unsigned long long>(result.stats.messages),
        result.stats.modeled_millis);
  }

  // Show a few concrete matches.
  algos::PeopleSearchOptions search;
  search.max_hops = 3;
  search.max_matches = 5;
  algos::PeopleSearchResult result;
  (void)algos::RunPeopleSearch(&graph, user, "David", search, &result);
  std::printf("\nfirst matches:\n");
  for (const auto& match : result.matches) {
    std::printf("  person %-8llu %-8s at %d hop(s), hosted on machine %d\n",
                static_cast<unsigned long long>(match.person),
                match.name.c_str(), match.hops,
                graph.MachineOfNode(match.person));
  }
  return 0;
}
