// Offline analytics on a web graph (paper §5.3): PageRank with the
// restrictive vertex-centric BSP model, plus BFS and weakly connected
// components on the same deployment — the "morphing" the paper advertises:
// one engine, multiple computation paradigms.
//
// Build & run:  ./build/examples/pagerank_web

#include <algorithm>
#include <cstdio>
#include <vector>

#include "algos/bfs.h"
#include "algos/pagerank.h"
#include "algos/wcc.h"
#include "graph/generators.h"

int main() {
  using namespace trinity;

  cloud::MemoryCloud::Options options;
  options.num_slaves = 8;
  options.p_bits = 5;
  options.storage.trunk.capacity = 32 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  Status s = cloud::MemoryCloud::Create(options, &cloud);
  if (!s.ok()) {
    std::fprintf(stderr, "cloud error: %s\n", s.ToString().c_str());
    return 1;
  }
  graph::Graph graph(cloud.get());

  const std::uint64_t kPages = 50000;
  std::printf("loading an R-MAT web graph: %llu pages, degree 13...\n",
              static_cast<unsigned long long>(kPages));
  s = graph::Generators::LoadRmat(&graph, kPages, 13.0, 7);
  if (!s.ok()) {
    std::fprintf(stderr, "load error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("memory cloud footprint: %.1f MB across %d machines\n\n",
              static_cast<double>(cloud->MemoryFootprintBytes()) / (1 << 20),
              options.num_slaves);

  // --- PageRank ------------------------------------------------------------
  algos::PageRankOptions pr;
  pr.iterations = 10;
  algos::PageRankResult ranks;
  s = algos::RunPageRank(&graph, pr, &ranks);
  if (!s.ok()) {
    std::fprintf(stderr, "pagerank error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "PageRank: %d supersteps | %.4f modeled s/iteration | %llu messages\n",
      ranks.stats.supersteps, ranks.seconds_per_iteration,
      static_cast<unsigned long long>(ranks.stats.messages));
  std::vector<std::pair<double, CellId>> top;
  top.reserve(ranks.ranks.size());
  for (const auto& [v, r] : ranks.ranks) top.emplace_back(r, v);
  std::partial_sort(top.begin(), top.begin() + 5, top.end(),
                    std::greater<>());
  std::printf("top pages by rank:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  page %-8llu rank %.6f\n",
                static_cast<unsigned long long>(top[i].second), top[i].first);
  }

  // --- BFS (the Graph500 kernel) -------------------------------------------
  algos::BfsResult bfs;
  s = algos::RunBfs(&graph, top[0].second, compute::TraversalEngine::Options{},
                    &bfs);
  if (!s.ok()) {
    std::fprintf(stderr, "bfs error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "\nBFS from page %llu: reached %llu pages in %d rounds, modeled %.4f "
      "s\n",
      static_cast<unsigned long long>(top[0].second),
      static_cast<unsigned long long>(bfs.reached), bfs.stats.rounds,
      bfs.modeled_seconds);

  // --- Weakly connected components ------------------------------------------
  algos::WccResult wcc;
  s = algos::RunWcc(&graph, algos::WccOptions{}, &wcc);
  if (!s.ok()) {
    std::fprintf(stderr, "wcc error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("WCC: %llu weakly connected components (%d supersteps)\n",
              static_cast<unsigned long long>(wcc.num_components),
              wcc.stats.supersteps);
  return 0;
}
